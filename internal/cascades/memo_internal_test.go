package cascades

import (
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/plan"
)

func memoCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Distinct: 100, TrueDistinct: 100, Min: 0, Max: 100},
			{Name: "b", Distinct: 50, TrueDistinct: 50, Min: 0, Max: 50},
		},
		BaseRows: 1e5, BytesPerRow: 16, GrowthPerDay: 1,
	})
	return cat
}

func tcol(id int, name string) plan.Column {
	return plan.Column{ID: plan.ColumnID(id), Name: name, Source: "t." + name}
}

func scanSelect() *plan.Node {
	a, b := tcol(1, "a"), tcol(2, "b")
	get := plan.NewGet("t", []plan.Column{a, b})
	sel := plan.NewSelect(get, plan.Cmp(plan.OpGT, plan.ColExpr(b), plan.NumExpr(5)))
	return plan.NewOutput(sel, "o")
}

func TestMemoInitialGroups(t *testing.T) {
	m := NewMemo(scanSelect(), cost.NewEstimated(memoCatalog()))
	if len(m.Groups) != 3 {
		t.Fatalf("memo has %d groups, want 3 (Get, Select, Output)", len(m.Groups))
	}
	if m.Root.Exprs[0].Node.Op != plan.OpOutput {
		t.Fatalf("root op %v", m.Root.Exprs[0].Node.Op)
	}
	for _, g := range m.Groups {
		if g.Props.Rows <= 0 {
			t.Fatalf("group %d has no derived cardinality", g.ID)
		}
	}
}

func TestMemoSharedNodesShareGroups(t *testing.T) {
	a := tcol(1, "a")
	get := plan.NewGet("t", []plan.Column{a})
	root := plan.NewMulti(plan.NewOutput(get, "x"), plan.NewOutput(get, "y"))
	m := NewMemo(root, cost.NewEstimated(memoCatalog()))
	// Groups: Get, Output(x), Output(y), Multi = 4 (Get shared).
	if len(m.Groups) != 4 {
		t.Fatalf("memo has %d groups, want 4", len(m.Groups))
	}
}

func TestInternDeduplicates(t *testing.T) {
	m := NewMemo(scanSelect(), cost.NewEstimated(memoCatalog()))
	var selExpr *MExpr
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpSelect {
				selExpr = e
			}
		}
	}
	// Re-intern a structurally identical select: no growth.
	clone := &RNode{
		Node:     selExpr.Node,
		Children: []RChild{GroupChild(selExpr.Children[0])},
	}
	if m.Intern(clone, selExpr.Group, selExpr, 99) {
		t.Fatal("identical expression interned as new")
	}
	if len(selExpr.Group.Exprs) != 1 {
		t.Fatalf("group grew to %d exprs", len(selExpr.Group.Exprs))
	}
}

func TestInternProvenanceChains(t *testing.T) {
	m := NewMemo(scanSelect(), cost.NewEstimated(memoCatalog()))
	var selExpr *MExpr
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpSelect {
				selExpr = e
			}
		}
	}
	// A rule-created variant (different predicate) records the rule in its
	// provenance.
	b := tcol(2, "b")
	variant := &RNode{
		Node: &plan.Node{
			Op:     plan.OpSelect,
			Pred:   plan.Cmp(plan.OpGE, plan.ColExpr(b), plan.NumExpr(5)),
			Schema: selExpr.Group.Schema,
		},
		Children: []RChild{GroupChild(selExpr.Children[0])},
	}
	if !m.Intern(variant, selExpr.Group, selExpr, 123) {
		t.Fatal("variant not interned")
	}
	ne := selExpr.Group.Exprs[len(selExpr.Group.Exprs)-1]
	if ne.RuleID != 123 {
		t.Fatalf("variant rule ID %d", ne.RuleID)
	}
	if !ne.Provenance.Equal(bitvec.New(123)) {
		t.Fatalf("variant provenance %v", ne.Provenance)
	}
	// A second derivation from the variant chains both rule IDs.
	variant2 := &RNode{
		Node: &plan.Node{
			Op:     plan.OpSelect,
			Pred:   plan.Cmp(plan.OpGT, plan.ColExpr(b), plan.NumExpr(4)),
			Schema: selExpr.Group.Schema,
		},
		Children: []RChild{GroupChild(selExpr.Children[0])},
	}
	if !m.Intern(variant2, ne.Group, ne, 124) {
		t.Fatal("second variant not interned")
	}
	ne2 := selExpr.Group.Exprs[len(selExpr.Group.Exprs)-1]
	if !ne2.Provenance.Equal(bitvec.New(123, 124)) {
		t.Fatalf("chained provenance %v", ne2.Provenance)
	}
}

func TestExprLimitBoundsGroup(t *testing.T) {
	m := NewMemo(scanSelect(), cost.NewEstimated(memoCatalog()))
	m.ExprLimit = 3
	var selExpr *MExpr
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpSelect {
				selExpr = e
			}
		}
	}
	b := tcol(2, "b")
	for i := 0; i < 10; i++ {
		rn := &RNode{
			Node: &plan.Node{
				Op:     plan.OpSelect,
				Pred:   plan.Cmp(plan.OpGT, plan.ColExpr(b), plan.NumExpr(float64(100+i))),
				Schema: selExpr.Group.Schema,
			},
			Children: []RChild{GroupChild(selExpr.Children[0])},
		}
		m.Intern(rn, selExpr.Group, selExpr, 50)
	}
	if got := len(selExpr.Group.Exprs); got > 3 {
		t.Fatalf("group grew to %d exprs past limit 3", got)
	}
}

// selectVariant builds a rule-output Select over base's child group with a
// distinct predicate constant, for interning tests.
func selectVariant(base *MExpr, c float64) *RNode {
	b := tcol(2, "b")
	return &RNode{
		Node: &plan.Node{
			Op:     plan.OpSelect,
			Pred:   plan.Cmp(plan.OpGT, plan.ColExpr(b), plan.NumExpr(c)),
			Schema: base.Group.Schema,
		},
		Children: []RChild{GroupChild(base.Children[0])},
	}
}

func findSelect(m *Memo) *MExpr {
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpSelect {
				return e
			}
		}
	}
	return nil
}

// TestHashCollisionFallback degrades the interning hash to a constant so
// every new expression lands in one bucket, and verifies the
// structural-equality fallback still deduplicates exactly.
func TestHashCollisionFallback(t *testing.T) {
	m := NewMemo(scanSelect(), cost.NewEstimated(memoCatalog()))
	m.hashMask = 0 // all expressions interned from here on collide
	selExpr := findSelect(m)

	va := selectVariant(selExpr, 1000)
	if !m.Intern(va, selExpr.Group, selExpr, 50) {
		t.Fatal("variant A not interned")
	}
	// A structurally identical copy must be caught by the equality scan of
	// the shared bucket, not re-interned.
	dup := selectVariant(selExpr, 1000)
	if m.Intern(dup, selExpr.Group, selExpr, 51) {
		t.Fatal("structurally identical expression re-interned under a hash collision")
	}
	// A structurally distinct expression with the same (degraded) hash must
	// still intern as new.
	vb := selectVariant(selExpr, 2000)
	if !m.Intern(vb, selExpr.Group, selExpr, 52) {
		t.Fatal("distinct variant rejected under a hash collision")
	}
	chain := 0
	for e := m.buckets[0]; e != nil; e = e.bucketNext {
		chain++
		if e.Group != selExpr.Group {
			t.Fatalf("bucketed expr resolved to group %d, want %d", e.Group.ID, selExpr.Group.ID)
		}
	}
	if chain != 2 {
		t.Fatalf("collision bucket holds %d exprs, want 2", chain)
	}
}

// TestHashedMatchesLegacyIntern replays one intern sequence through the
// hashed and the string-keyed paths and asserts identical memo shapes.
func TestHashedMatchesLegacyIntern(t *testing.T) {
	est := cost.NewEstimated(memoCatalog())
	build := func(legacy bool) *Memo {
		m := newMemo(scanSelect(), est, legacy)
		sel := findSelect(m)
		for i := 0; i < 6; i++ {
			m.Intern(selectVariant(sel, float64(100+i%3)), sel.Group, sel, 40+i%3)
		}
		return m
	}
	hashed, legacy := build(false), build(true)
	if len(hashed.Groups) != len(legacy.Groups) || hashed.TotalExprs() != legacy.TotalExprs() {
		t.Fatalf("hashed memo %d groups / %d exprs, legacy %d / %d",
			len(hashed.Groups), hashed.TotalExprs(), len(legacy.Groups), legacy.TotalExprs())
	}
	for i := range hashed.Groups {
		if len(hashed.Groups[i].Exprs) != len(legacy.Groups[i].Exprs) {
			t.Fatalf("group %d: hashed %d exprs, legacy %d", i,
				len(hashed.Groups[i].Exprs), len(legacy.Groups[i].Exprs))
		}
	}
}

func TestNewColIDFresh(t *testing.T) {
	m := NewMemo(scanSelect(), cost.NewEstimated(memoCatalog()))
	id1 := m.NewColID()
	id2 := m.NewColID()
	if id1 == id2 {
		t.Fatal("NewColID repeated an ID")
	}
	// Fresh IDs never collide with bound plan columns (max bound ID is 2).
	if id1 <= 2 {
		t.Fatalf("fresh ID %d collides with bound columns", id1)
	}
}

func TestRuleSetValidation(t *testing.T) {
	dup := []RuleInfo{
		{ID: 5, Name: "A", Category: OnByDefault},
		{ID: 5, Name: "B", Category: OnByDefault},
	}
	if _, err := NewRuleSet(nil, nil, dup); err == nil {
		t.Fatal("duplicate rule IDs accepted")
	}
	oob := []RuleInfo{{ID: 999, Name: "X", Category: OnByDefault}}
	if _, err := NewRuleSet(nil, nil, oob); err == nil {
		t.Fatal("out-of-range rule ID accepted")
	}
}

func TestDefaultConfigCategories(t *testing.T) {
	infos := []RuleInfo{
		{ID: 1, Name: "req", Category: Required},
		{ID: 2, Name: "off", Category: OffByDefault},
		{ID: 3, Name: "on", Category: OnByDefault},
		{ID: 4, Name: "impl", Category: Implementation},
	}
	rs, err := NewRuleSet(nil, nil, infos)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rs.DefaultConfig()
	if !cfg.Get(1) || cfg.Get(2) || !cfg.Get(3) || !cfg.Get(4) {
		t.Fatalf("default config %v", cfg)
	}
	ids := rs.NonRequiredIDs()
	if len(ids) != 3 {
		t.Fatalf("non-required IDs %v", ids)
	}
}
