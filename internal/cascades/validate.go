package cascades

import (
	"errors"
	"fmt"

	"steerq/internal/plan"
)

// Validate checks structural invariants of an extracted physical plan and
// returns every violation found, joined with errors.Join — a corrupted plan
// usually breaks several invariants at once, and seeing all of them beats
// re-running after each fix. It returns nil for a valid plan.
//
// The optimizer's own tests run every winning plan through it; the executor
// and the experiment harness run it on every plan when STEERQ_CHECK_PLANS is
// set (see exec.New).
//
// Checked invariants:
//
//   - every operator has the child count its kind requires;
//   - degrees of parallelism are in [1, maxDOP] (singleton operators exactly 1);
//   - exchange kinds cohere with the distribution they deliver: a shuffle
//     delivers hash/random partitions, a gather a singleton at DOP 1, a
//     broadcast a broadcast distribution; hash distributions carry keys, and
//     an exchange's hash keys resolve within its schema;
//   - operators that consume co-partitioned inputs (hash join, merge join,
//     hash aggregation, reducers) actually receive hash- or
//     singleton-distributed children;
//   - schema-preserving operators (filters, sorts, exchanges, tops, UDO
//     processors/reducers, outputs) carry exactly their child's column-ID
//     set; computes produce their projection outputs; aggregations produce
//     key plus aggregate columns; joins only reference columns their
//     children produce;
//   - every operator carries a rule attribution (RuleID >= 0).
func Validate(p *plan.PhysNode, maxDOP int) error {
	var errs []error
	report := func(n *plan.PhysNode, format string, args ...any) {
		errs = append(errs, fmt.Errorf("cascades: invalid plan at %v: %s", n.Op, fmt.Sprintf(format, args...)))
	}
	p.Walk(func(n *plan.PhysNode) {
		if want, ok := childArity(n.Op); ok && len(n.Children) != want {
			report(n, "has %d children, want %d", len(n.Children), want)
			return // remaining checks index into Children
		}
		dop := n.Dist.DOP
		if dop < 1 || (maxDOP > 0 && dop > maxDOP) {
			report(n, "DOP %d outside [1, %d]", dop, maxDOP)
		}
		validateDist(n, report)
		validateSchema(n, report)
		if n.RuleID < 0 {
			report(n, "operator without rule attribution")
		}
	})
	return errors.Join(errs...)
}

// reportFn accumulates one violation at a node.
type reportFn func(n *plan.PhysNode, format string, args ...any)

// validateDist checks distribution and exchange-kind coherence.
func validateDist(n *plan.PhysNode, report reportFn) {
	dop := n.Dist.DOP
	switch n.Op {
	case plan.PhysGlobalTop:
		if dop != 1 {
			report(n, "global top at DOP %d", dop)
		}
	case plan.PhysExchange:
		switch n.Exchange {
		case plan.ExchangeGather:
			if n.Dist.Kind != plan.DistSingleton || dop != 1 {
				report(n, "gather delivering %v", n.Dist)
			}
		case plan.ExchangeBroadcast:
			if n.Dist.Kind != plan.DistBroadcast {
				report(n, "broadcast delivering %v", n.Dist)
			}
		case plan.ExchangeShuffle:
			if n.Dist.Kind != plan.DistHash && n.Dist.Kind != plan.DistRandom {
				report(n, "shuffle delivering %v, want hash or random partitions", n.Dist)
			}
			if n.Dist.Kind == plan.DistHash && len(n.Dist.Keys) == 0 {
				report(n, "hash shuffle without keys")
			}
		default:
			// ExchangeInitial: the stored layout, no delivery constraint.
		}
	case plan.PhysHashJoin, plan.PhysMergeJoin:
		for i, c := range n.Children {
			if c.Dist.Kind != plan.DistHash && c.Dist.Kind != plan.DistSingleton {
				report(n, "re-partitioned join child %d delivered %v", i, c.Dist)
			}
		}
	case plan.PhysHashJoinAlt, plan.PhysLoopJoin:
		if n.Children[1].Dist.Kind != plan.DistBroadcast {
			report(n, "build side delivered %v, want broadcast", n.Children[1].Dist)
		}
	case plan.PhysHashAgg, plan.PhysStreamAgg, plan.PhysFinalHashAgg:
		c := n.Children[0]
		if len(n.GroupKeys) > 0 {
			if c.Dist.Kind != plan.DistHash && c.Dist.Kind != plan.DistSingleton {
				report(n, "keyed aggregation over %v input", c.Dist)
			}
		} else if c.Dist.Kind != plan.DistSingleton {
			report(n, "global aggregation over %v input", c.Dist)
		}
	case plan.PhysReduceImpl:
		c := n.Children[0]
		if c.Dist.Kind != plan.DistHash && c.Dist.Kind != plan.DistSingleton {
			report(n, "reducer over %v input", c.Dist)
		}
	default:
		// No distribution requirement beyond the generic checks below.
	}
	if n.Dist.Kind == plan.DistHash && len(n.Dist.Keys) == 0 {
		report(n, "hash distribution without keys")
	}
}

// validateSchema checks column-ID consistency between an operator's schema,
// its payload and its children.
func validateSchema(n *plan.PhysNode, report reportFn) {
	switch n.Op {
	case plan.PhysFilter, plan.PhysSort, plan.PhysExchange, plan.PhysLocalTop,
		plan.PhysGlobalTop, plan.PhysProcessImpl, plan.PhysReduceImpl,
		plan.PhysOutputImpl:
		// Schema-preserving operators: exactly the child's column IDs.
		if !sameIDSet(n.Schema, n.Children[0].Schema) {
			report(n, "schema %v does not preserve child schema %v",
				columnIDs(n.Schema), columnIDs(n.Children[0].Schema))
		}
	case plan.PhysCompute:
		outs := make([]plan.Column, len(n.Projs))
		for i, p := range n.Projs {
			outs[i] = p.Out
		}
		if !sameIDSet(n.Schema, outs) {
			report(n, "schema %v differs from projection outputs %v",
				columnIDs(n.Schema), columnIDs(outs))
		}
	case plan.PhysHashAgg, plan.PhysStreamAgg, plan.PhysPartialHashAgg, plan.PhysFinalHashAgg:
		outs := make([]plan.Column, 0, len(n.GroupKeys)+len(n.Aggs))
		outs = append(outs, n.GroupKeys...)
		for _, a := range n.Aggs {
			outs = append(outs, a.Out)
		}
		if !sameIDSet(n.Schema, outs) {
			report(n, "schema %v differs from group keys plus aggregate outputs %v",
				columnIDs(n.Schema), columnIDs(outs))
		}
	case plan.PhysHashJoin, plan.PhysHashJoinAlt, plan.PhysMergeJoin, plan.PhysLoopJoin:
		avail := make(map[plan.ColumnID]bool)
		for _, c := range n.Children {
			for _, col := range c.Schema {
				avail[col.ID] = true
			}
		}
		for _, col := range n.Schema {
			if !avail[col.ID] {
				report(n, "schema column %d produced by neither join child", col.ID)
			}
		}
	default:
		// Scans introduce columns; unions take the first branch's identity.
	}
	if n.Op == plan.PhysExchange && n.Dist.Kind == plan.DistHash {
		ids := make(map[plan.ColumnID]bool, len(n.Schema))
		for _, col := range n.Schema {
			ids[col.ID] = true
		}
		for _, k := range n.Dist.Keys {
			if !ids[k] {
				report(n, "hash key %d not in exchange schema %v", k, columnIDs(n.Schema))
			}
		}
	}
}

// sameIDSet reports whether two schemas carry the same set of column IDs
// (order and duplicates ignored).
func sameIDSet(a, b []plan.Column) bool {
	as := make(map[plan.ColumnID]bool, len(a))
	for _, c := range a {
		as[c.ID] = true
	}
	bs := make(map[plan.ColumnID]bool, len(b))
	for _, c := range b {
		bs[c.ID] = true
	}
	if len(as) != len(bs) {
		return false
	}
	for id := range as {
		if !bs[id] {
			return false
		}
	}
	return true
}

// columnIDs renders a schema as its column-ID list for diagnostics.
func columnIDs(schema []plan.Column) []plan.ColumnID {
	ids := make([]plan.ColumnID, len(schema))
	for i, c := range schema {
		ids[i] = c.ID
	}
	return ids
}

// childArity returns the exact child count an operator requires; ok is false
// for variadic operators (unions, the multi root).
func childArity(op plan.PhysOp) (int, bool) {
	switch op {
	case plan.PhysExtract, plan.PhysRangeScan:
		return 0, true
	case plan.PhysHashJoin, plan.PhysHashJoinAlt, plan.PhysMergeJoin, plan.PhysLoopJoin:
		return 2, true
	case plan.PhysUnionMerge, plan.PhysVirtualDataset, plan.PhysMultiImpl:
		return 0, false
	default:
		return 1, true
	}
}
