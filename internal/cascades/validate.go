package cascades

import (
	"fmt"

	"steerq/internal/plan"
)

// Validate checks structural invariants of an extracted physical plan. The
// optimizer's own tests run every winning plan through it; it is also useful
// when embedding the engine elsewhere.
//
// Checked invariants:
//
//   - every operator has the child count its kind requires;
//   - degrees of parallelism are in [1, maxDOP] (singleton operators exactly 1);
//   - hash-distributed streams carry hash keys; broadcast/gather exchanges
//     carry the right distribution kinds;
//   - operators that consume co-partitioned inputs (hash join, merge join,
//     hash aggregation, reducers) actually receive hash- or
//     singleton-distributed children;
//   - every operator carries a rule attribution (RuleID >= 0).
func Validate(p *plan.PhysNode, maxDOP int) error {
	var firstErr error
	report := func(n *plan.PhysNode, format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("cascades: invalid plan at %v: %s", n.Op, fmt.Sprintf(format, args...))
		}
	}
	p.Walk(func(n *plan.PhysNode) {
		if want, ok := childArity(n.Op); ok && len(n.Children) != want {
			report(n, "has %d children, want %d", len(n.Children), want)
			return
		}
		dop := n.Dist.DOP
		if dop < 1 || (maxDOP > 0 && dop > maxDOP) {
			report(n, "DOP %d outside [1, %d]", dop, maxDOP)
			return
		}
		switch n.Op {
		case plan.PhysGlobalTop:
			if dop != 1 {
				report(n, "global top at DOP %d", dop)
			}
		case plan.PhysExchange:
			switch n.Exchange {
			case plan.ExchangeGather:
				if n.Dist.Kind != plan.DistSingleton || dop != 1 {
					report(n, "gather delivering %v", n.Dist)
				}
			case plan.ExchangeBroadcast:
				if n.Dist.Kind != plan.DistBroadcast {
					report(n, "broadcast delivering %v", n.Dist)
				}
			case plan.ExchangeShuffle:
				if n.Dist.Kind == plan.DistHash && len(n.Dist.Keys) == 0 {
					report(n, "hash shuffle without keys")
				}
			}
		case plan.PhysHashJoin, plan.PhysMergeJoin:
			for i, c := range n.Children {
				if c.Dist.Kind != plan.DistHash && c.Dist.Kind != plan.DistSingleton {
					report(n, "re-partitioned join child %d delivered %v", i, c.Dist)
				}
			}
		case plan.PhysHashJoinAlt, plan.PhysLoopJoin:
			if n.Children[1].Dist.Kind != plan.DistBroadcast {
				report(n, "build side delivered %v, want broadcast", n.Children[1].Dist)
			}
		case plan.PhysHashAgg, plan.PhysStreamAgg, plan.PhysFinalHashAgg:
			c := n.Children[0]
			if len(n.GroupKeys) > 0 {
				if c.Dist.Kind != plan.DistHash && c.Dist.Kind != plan.DistSingleton {
					report(n, "keyed aggregation over %v input", c.Dist)
				}
			} else if c.Dist.Kind != plan.DistSingleton {
				report(n, "global aggregation over %v input", c.Dist)
			}
		case plan.PhysReduceImpl:
			c := n.Children[0]
			if c.Dist.Kind != plan.DistHash && c.Dist.Kind != plan.DistSingleton {
				report(n, "reducer over %v input", c.Dist)
			}
		}
		if n.Dist.Kind == plan.DistHash && len(n.Dist.Keys) == 0 {
			report(n, "hash distribution without keys")
		}
		if n.RuleID < 0 {
			report(n, "operator without rule attribution")
		}
	})
	return firstErr
}

// childArity returns the exact child count an operator requires; ok is false
// for variadic operators (unions, the multi root).
func childArity(op plan.PhysOp) (int, bool) {
	switch op {
	case plan.PhysExtract, plan.PhysRangeScan:
		return 0, true
	case plan.PhysHashJoin, plan.PhysHashJoinAlt, plan.PhysMergeJoin, plan.PhysLoopJoin:
		return 2, true
	case plan.PhysUnionMerge, plan.PhysVirtualDataset, plan.PhysMultiImpl:
		return 0, false
	default:
		return 1, true
	}
}
