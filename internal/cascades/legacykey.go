package cascades

import (
	"fmt"
	"strings"

	"steerq/internal/plan"
)

// This file preserves the pre-hash string-keyed interning path verbatim. It
// is reachable only with Optimizer.LegacyIntern (a test-only knob): the
// memo-equivalence golden test compiles every workload through both paths
// and asserts identical memos, signatures, costs and plans. Delete this file
// together with that knob once the hashed path has survived a few PRs.

// legacyExprKey builds the structural interning key of an expression:
// operator, payload (with column IDs and literal values), and child group
// IDs.
func legacyExprKey(n *plan.Node, children []*Group) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", n.Op)
	switch n.Op {
	case plan.OpGet:
		b.WriteString(n.Table)
		legacyKeyExpr(&b, n.Pred)
	case plan.OpSelect, plan.OpJoin:
		legacyKeyExpr(&b, n.Pred)
	case plan.OpProject:
		for _, p := range n.Projs {
			fmt.Fprintf(&b, "p%d=", p.Out.ID)
			legacyKeyExpr(&b, p.Expr)
		}
	case plan.OpGroupBy:
		for _, k := range n.GroupKeys {
			fmt.Fprintf(&b, "k%d,", k.ID)
		}
		for _, a := range n.Aggs {
			fmt.Fprintf(&b, "a%s:%d=", a.Fn, a.Out.ID)
			legacyKeyExpr(&b, a.Arg)
		}
	case plan.OpProcess:
		b.WriteString(n.Processor)
	case plan.OpReduce:
		b.WriteString(n.Processor)
		for _, k := range n.ReduceKeys {
			fmt.Fprintf(&b, "k%d,", k.ID)
		}
	case plan.OpTop:
		fmt.Fprintf(&b, "n%d", n.TopN)
		for _, k := range n.SortKeys {
			fmt.Fprintf(&b, "s%d:%t,", k.Col.ID, k.Desc)
		}
	case plan.OpOutput:
		b.WriteString(n.OutputPath)
	default:
		// OpUnionAll, OpMulti: structure alone (children below) is the key.
	}
	// Schema IDs distinguish otherwise identical payloads over different
	// column identities (e.g. two scans of the same stream bound twice).
	b.WriteString("|s:")
	for _, c := range n.Schema {
		fmt.Fprintf(&b, "%d,", c.ID)
	}
	b.WriteString("|c:")
	for _, g := range children {
		fmt.Fprintf(&b, "%d,", g.ID)
	}
	return b.String()
}

func legacyKeyExpr(b *strings.Builder, e *plan.Expr) {
	if e == nil {
		b.WriteByte('~')
		return
	}
	fmt.Fprintf(b, "(%d", e.Kind)
	switch e.Kind {
	case plan.ExprColumn:
		fmt.Fprintf(b, ":%d", e.Col.ID)
	case plan.ExprConst:
		b.WriteString(e.Lit.String())
	case plan.ExprCmp, plan.ExprArith:
		fmt.Fprintf(b, ":%d", e.Op)
	case plan.ExprFunc:
		b.WriteString(e.Fn)
	}
	for _, a := range e.Args {
		legacyKeyExpr(b, a)
	}
	b.WriteByte(')')
}
