// Package cascades implements a memo-based, top-down Cascades-style query
// optimizer in the style of Graefe's framework, which the SCOPE optimizer
// follows (§3.1): transformation rules expand the logical search space inside
// a memo of equivalence groups, implementation rules produce physical
// operators, enforcer rules (EnforceExchange) satisfy distribution
// requirements, and the cheapest physical alternative per group wins.
//
// Unlike a textbook implementation, the engine tracks *which rule produced
// every expression*. The union of rule IDs along the derivation chain of the
// final plan is the job's rule signature (Definition 3.2 of the paper), the
// central abstraction of steerq.
package cascades

import (
	"fmt"
	"strings"

	"steerq/internal/cost"
	"steerq/internal/plan"
)

// GroupID identifies a memo group.
type GroupID int

// MExpr is a logical multi-expression: an operator payload plus child group
// references.
type MExpr struct {
	// Node carries the operator payload (Op plus per-op fields). Its
	// Children field is unused; children live in the Children group list.
	Node     *plan.Node
	Children []*Group
	Group    *Group

	// RuleID is the rule that created this expression, or -1 for
	// expressions of the initial plan.
	RuleID int

	// Provenance lists the rule IDs on the derivation chain from the
	// initial plan to this expression (including RuleID). These rules
	// "directly contribute" to any final plan using this expression.
	Provenance []int

	fired map[int]bool // transformation rules already applied to this expr
}

func (e *MExpr) firedRule(id int) bool { return e.fired[id] }

func (e *MExpr) markFired(id int) {
	if e.fired == nil {
		e.fired = make(map[int]bool)
	}
	e.fired[id] = true
}

// Group is an equivalence class of logical expressions producing the same
// result set.
type Group struct {
	ID     GroupID
	Exprs  []*MExpr
	Schema []plan.Column // canonical output columns
	Props  cost.Props    // estimated statistics (derived from first expr)

	// winners caches the best physical alternative per required
	// distribution.
	winners map[string]*winner
}

// Memo is the space of explored plans.
type Memo struct {
	Groups []*Group
	// Root is the group of the job's root operator.
	Root *Group

	est     *cost.Estimator
	index   map[string]*Group // structural interning of expressions
	byNode  map[*plan.Node]*Group
	nextCol plan.ColumnID

	// ExprLimit bounds expressions per group; TotalLimit bounds the whole
	// memo. Exceeding either stops further exploration (big-data jobs have
	// hundreds of operators; SCOPE bounds its search the same way).
	ExprLimit  int
	TotalLimit int
	totalExprs int
}

// NewMemo builds a memo over the logical plan DAG rooted at root, deriving
// group properties with the given estimator.
func NewMemo(root *plan.Node, est *cost.Estimator) *Memo {
	m := &Memo{
		est:        est,
		index:      make(map[string]*Group),
		byNode:     make(map[*plan.Node]*Group),
		ExprLimit:  10,
		TotalLimit: 2048,
	}
	maxID := plan.ColumnID(0)
	root.Walk(func(n *plan.Node) {
		for _, c := range n.Schema {
			if c.ID > maxID {
				maxID = c.ID
			}
		}
	})
	m.nextCol = maxID
	m.Root = m.groupForNode(root)
	return m
}

// Estimator returns the estimator used to derive group properties. Rules may
// use it for guard conditions (e.g. conjunct ordering by estimated
// selectivity).
func (m *Memo) Estimator() *cost.Estimator { return m.est }

// NewColID allocates a fresh column ID for rule-created columns (e.g.
// partial-aggregation outputs).
func (m *Memo) NewColID() plan.ColumnID {
	m.nextCol++
	return m.nextCol
}

// groupForNode interns the logical DAG bottom-up, preserving sharing: a
// *plan.Node consumed by several parents maps to one group.
func (m *Memo) groupForNode(n *plan.Node) *Group {
	if g, ok := m.byNode[n]; ok {
		return g
	}
	children := make([]*Group, len(n.Children))
	for i, c := range n.Children {
		children[i] = m.groupForNode(c)
	}
	payload := shallow(n)
	key := exprKey(payload, children)
	if g, ok := m.index[key]; ok {
		m.byNode[n] = g
		return g
	}
	g := &Group{ID: GroupID(len(m.Groups)), Schema: n.Schema, winners: make(map[string]*winner)}
	e := &MExpr{Node: payload, Children: children, Group: g, RuleID: -1}
	// Groups usually grow past one expression during exploration; a little
	// up-front capacity avoids the append regrowth on the optimizer's
	// hottest allocation site without over-reserving for leaf groups.
	g.Exprs = append(make([]*MExpr, 0, 4), e)
	g.Props = m.deriveProps(e)
	m.Groups = append(m.Groups, g)
	m.index[key] = g
	m.byNode[n] = g
	m.totalExprs++
	return g
}

// shallow copies a node payload without children.
func shallow(n *plan.Node) *plan.Node {
	cp := *n
	cp.Children = nil
	return &cp
}

// Full reports whether the memo's exploration budget is exhausted.
func (m *Memo) Full() bool { return m.totalExprs >= m.TotalLimit }

// TotalExprs returns the number of expressions interned so far. It is
// maintained incrementally by groupForNode and intern, so reading it never
// walks the groups.
func (m *Memo) TotalExprs() int { return m.totalExprs }

// RNode describes a rule's output: a new operator payload over children that
// are either existing groups or further new sub-expressions.
type RNode struct {
	Node     *plan.Node // payload; Children unused
	Children []RChild
}

// RChild is one child of an RNode: exactly one of Group and Sub is set.
type RChild struct {
	Group *Group
	Sub   *RNode
}

// GroupChild wraps an existing group as a rule-output child.
func GroupChild(g *Group) RChild { return RChild{Group: g} }

// SubChild wraps a new sub-expression as a rule-output child.
func SubChild(r *RNode) RChild { return RChild{Sub: r} }

// Intern inserts a rule result into the memo. The root expression joins
// target (the group of the matched expression); sub-expressions are interned
// into existing structurally identical groups or fresh ones. from is the
// matched expression (for provenance); ruleID identifies the applying rule.
// It returns true if any new expression was added.
func (m *Memo) Intern(rn *RNode, target *Group, from *MExpr, ruleID int) bool {
	if m.Full() {
		return false
	}
	prov := appendProv(from.Provenance, ruleID)
	_, added := m.intern(rn, target, prov, ruleID)
	return added
}

func appendProv(base []int, ruleID int) []int {
	out := make([]int, 0, len(base)+1)
	out = append(out, base...)
	for _, id := range out {
		if id == ruleID {
			return out
		}
	}
	return append(out, ruleID)
}

func (m *Memo) intern(rn *RNode, target *Group, prov []int, ruleID int) (*Group, bool) {
	added := false
	children := make([]*Group, len(rn.Children))
	for i, c := range rn.Children {
		if c.Group != nil {
			children[i] = c.Group
			continue
		}
		g, subAdded := m.intern(c.Sub, nil, prov, ruleID)
		children[i] = g
		added = added || subAdded
	}
	key := exprKey(rn.Node, children)
	if g, ok := m.index[key]; ok {
		// Expression already known. If it is known in a different group
		// than the target, the two groups are semantically equal but we
		// do not merge groups (a standard simplification); the duplicate
		// is dropped.
		return g, added
	}
	g := target
	if g == nil {
		g = &Group{ID: GroupID(len(m.Groups)), Schema: rn.Node.Schema, winners: make(map[string]*winner)}
		g.Exprs = make([]*MExpr, 0, 4)
		m.Groups = append(m.Groups, g)
	}
	if len(g.Exprs) >= m.ExprLimit && target != nil {
		return g, added
	}
	e := &MExpr{Node: rn.Node, Children: children, Group: g, RuleID: ruleID, Provenance: prov}
	g.Exprs = append(g.Exprs, e)
	m.index[key] = g
	m.totalExprs++
	if target == nil {
		g.Props = m.deriveProps(e)
	}
	return g, true
}

// exprKey builds the structural interning key of an expression: operator,
// payload (with column IDs and literal values), and child group IDs.
func exprKey(n *plan.Node, children []*Group) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", n.Op)
	switch n.Op {
	case plan.OpGet:
		b.WriteString(n.Table)
		keyExpr(&b, n.Pred)
	case plan.OpSelect, plan.OpJoin:
		keyExpr(&b, n.Pred)
	case plan.OpProject:
		for _, p := range n.Projs {
			fmt.Fprintf(&b, "p%d=", p.Out.ID)
			keyExpr(&b, p.Expr)
		}
	case plan.OpGroupBy:
		for _, k := range n.GroupKeys {
			fmt.Fprintf(&b, "k%d,", k.ID)
		}
		for _, a := range n.Aggs {
			fmt.Fprintf(&b, "a%s:%d=", a.Fn, a.Out.ID)
			keyExpr(&b, a.Arg)
		}
	case plan.OpProcess:
		b.WriteString(n.Processor)
	case plan.OpReduce:
		b.WriteString(n.Processor)
		for _, k := range n.ReduceKeys {
			fmt.Fprintf(&b, "k%d,", k.ID)
		}
	case plan.OpTop:
		fmt.Fprintf(&b, "n%d", n.TopN)
		for _, k := range n.SortKeys {
			fmt.Fprintf(&b, "s%d:%t,", k.Col.ID, k.Desc)
		}
	case plan.OpOutput:
		b.WriteString(n.OutputPath)
	default:
		// OpUnionAll, OpMulti: structure alone (children below) is the key.
	}
	// Schema IDs distinguish otherwise identical payloads over different
	// column identities (e.g. two scans of the same stream bound twice).
	b.WriteString("|s:")
	for _, c := range n.Schema {
		fmt.Fprintf(&b, "%d,", c.ID)
	}
	b.WriteString("|c:")
	for _, g := range children {
		fmt.Fprintf(&b, "%d,", g.ID)
	}
	return b.String()
}

func keyExpr(b *strings.Builder, e *plan.Expr) {
	if e == nil {
		b.WriteByte('~')
		return
	}
	fmt.Fprintf(b, "(%d", e.Kind)
	switch e.Kind {
	case plan.ExprColumn:
		fmt.Fprintf(b, ":%d", e.Col.ID)
	case plan.ExprConst:
		b.WriteString(e.Lit.String())
	case plan.ExprCmp, plan.ExprArith:
		fmt.Fprintf(b, ":%d", e.Op)
	case plan.ExprFunc:
		b.WriteString(e.Fn)
	}
	for _, a := range e.Args {
		keyExpr(b, a)
	}
	b.WriteByte(')')
}

// deriveProps computes a group's estimated statistics from one expression.
func (m *Memo) deriveProps(e *MExpr) cost.Props {
	childProps := make([]cost.Props, len(e.Children))
	childSchemas := make([][]plan.Column, len(e.Children))
	for i, c := range e.Children {
		childProps[i] = c.Props
		childSchemas[i] = c.Schema
	}
	return m.DerivePropsFrom(e.Node, childProps, childSchemas, e.Group.Schema)
}

// DerivePropsFrom estimates one operator's output statistics from explicit
// child statistics. The physical search uses it to cost every candidate from
// its *own* expression tree rather than canonical group statistics — which is
// why the same job recompiled under different rule configurations can come
// out with different (and sometimes lower) estimated costs: "the costs across
// recompilation runs with different rules are not directly comparable" (§5.3).
func (m *Memo) DerivePropsFrom(n *plan.Node, childProps []cost.Props, childSchemas [][]plan.Column, outSchema []plan.Column) cost.Props {
	switch n.Op {
	case plan.OpGet:
		return m.est.Scan(n.Table, n.Schema, n.Pred)
	case plan.OpSelect:
		return m.est.Filter(childProps[0], n.Pred)
	case plan.OpProject:
		return m.est.Project(childProps[0], n.Projs)
	case plan.OpJoin:
		return m.est.Join(childProps[0], childProps[1], n.Pred)
	case plan.OpGroupBy:
		return m.est.GroupBy(childProps[0], n.GroupKeys, n.Aggs)
	case plan.OpUnionAll:
		return m.est.UnionAll(childProps, childSchemas, outSchema)
	case plan.OpProcess:
		return m.est.Process(childProps[0], n.Processor)
	case plan.OpReduce:
		return m.est.Reduce(childProps[0], n.ReduceKeys, n.Processor)
	case plan.OpTop:
		return m.est.Top(childProps[0], n.TopN)
	case plan.OpOutput:
		return childProps[0]
	case plan.OpMulti:
		var p cost.Props
		p.NDV = map[plan.ColumnID]float64{}
		for _, cp := range childProps {
			p.Rows += cp.Rows
			p.RowBytes = maxFloat(p.RowBytes, cp.RowBytes)
		}
		return p
	}
	return cost.Props{Rows: 1, RowBytes: 8, NDV: map[plan.ColumnID]float64{}}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
