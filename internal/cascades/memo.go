// Package cascades implements a memo-based, top-down Cascades-style query
// optimizer in the style of Graefe's framework, which the SCOPE optimizer
// follows (§3.1): transformation rules expand the logical search space inside
// a memo of equivalence groups, implementation rules produce physical
// operators, enforcer rules (EnforceExchange) satisfy distribution
// requirements, and the cheapest physical alternative per group wins.
//
// Unlike a textbook implementation, the engine tracks *which rule produced
// every expression*. The union of rule IDs along the derivation chain of the
// final plan is the job's rule signature (Definition 3.2 of the paper), the
// central abstraction of steerq.
//
// steerq:hotpath — compilation dominates the pipeline's cost; the hotalloc
// analyzer guards this package against allocation regressions.
package cascades

import (
	"encoding/binary"
	"math"

	"steerq/internal/bitvec"
	"steerq/internal/cost"
	"steerq/internal/plan"
)

// GroupID identifies a memo group.
type GroupID int

// MExpr is a logical multi-expression: an operator payload plus child group
// references.
type MExpr struct {
	// Node carries the operator payload (Op plus per-op fields). Its
	// Children field is unused; children live in the Children group list.
	Node     *plan.Node
	Children []*Group
	Group    *Group

	// RuleID is the rule that created this expression, or -1 for
	// expressions of the initial plan.
	RuleID int

	// Provenance holds the rule IDs on the derivation chain from the
	// initial plan to this expression (including RuleID), one bit per rule.
	// These rules "directly contribute" to any final plan using this
	// expression. Stored as a bitset so chaining a derivation is a value
	// copy plus one Set, and the signature union during extraction is a
	// single Or — no per-intern slice copies.
	Provenance bitvec.Vector

	fired bitvec.Vector // transformation rules already applied to this expr

	// bucketNext chains expressions sharing an interning hash bucket
	// (see Memo.buckets). Intrusive so inserting an expression into the
	// index never allocates.
	bucketNext *MExpr
}

func (e *MExpr) firedRule(id int) bool { return e.fired.Get(id) }

func (e *MExpr) markFired(id int) { e.fired.Set(id) }

// Group is an equivalence class of logical expressions producing the same
// result set.
type Group struct {
	ID     GroupID
	Exprs  []*MExpr
	Schema []plan.Column // canonical output columns
	Props  cost.Props    // estimated statistics (derived from first expr)

	// winners caches the best physical alternative per required
	// distribution.
	winners map[distKey]*winner
}

// Memo is the space of explored plans.
type Memo struct {
	Groups []*Group
	// Root is the group of the job's root operator.
	Root *Group

	est *cost.Estimator
	// buckets is the structural interning index: expressions keyed by a
	// 64-bit FNV-1a hash of their structural key, with collisions resolved
	// by exact structural equality (exprEqual) along the intrusive
	// MExpr.bucketNext chain. Interning therefore never materializes a key
	// string; the serialized key lives only in scratch.
	buckets map[uint64]*MExpr
	// scratch is the reusable key-serialization buffer behind exprHash.
	// Once grown to the largest key it is never reallocated.
	scratch []byte
	// hashMask degrades hashes for tests: all-ones in production, 0 forces
	// every expression into one collision bucket so the structural-equality
	// fallback is exercised end to end.
	hashMask uint64
	// collisions counts interning probes that walked past a structurally
	// unequal expression sharing their hash bucket. A healthy 64-bit hash
	// keeps this at (or very near) zero; the observability layer surfaces it
	// so a degraded hash shows up as a counter, not as silent slowdown.
	collisions uint64
	// legacy reroutes interning through the pre-hash string-keyed index.
	// Test-only: the memo-equivalence golden test compiles every workload
	// through both paths and asserts identical memos, signatures and plans.
	legacy      bool
	legacyIndex map[string]*Group

	byNode  map[*plan.Node]*Group
	nextCol plan.ColumnID

	// exprSlab, groupSlab and groupPool are the active tails of the
	// chunked allocators for expressions, group structs and child-group
	// slices; propsBuf and schemaBuf are reusable scratch for deriveProps
	// (read-only to the estimator). When the memo is built inside Optimize
	// the chunks come from — and return to — the recycled searchScratch
	// arena (see scratch.go); a standalone NewMemo allocates them fresh.
	arena     *searchScratch
	exprSlab  []MExpr
	groupSlab []Group
	groupPool []*Group
	nodeSlab  []plan.Node
	propsBuf  []cost.Props
	schemaBuf [][]plan.Column

	// ExprLimit bounds expressions per group; TotalLimit bounds the whole
	// memo. Exceeding either stops further exploration (big-data jobs have
	// hundreds of operators; SCOPE bounds its search the same way).
	ExprLimit  int
	TotalLimit int
	totalExprs int
}

// NewMemo builds a memo over the logical plan DAG rooted at root, deriving
// group properties with the given estimator.
func NewMemo(root *plan.Node, est *cost.Estimator) *Memo {
	return newMemo(root, est, false)
}

func newMemo(root *plan.Node, est *cost.Estimator, legacy bool) *Memo {
	return newMemoArena(root, est, legacy, nil)
}

// newMemoArena builds a memo whose slab chunks, interning maps and scratch
// buffers come from sc when non-nil. The caller owns the arena's lifecycle:
// it must not recycle sc before it is done with the memo and everything
// extracted from it (see search.release).
func newMemoArena(root *plan.Node, est *cost.Estimator, legacy bool, sc *searchScratch) *Memo {
	m := &Memo{
		est:        est,
		arena:      sc,
		hashMask:   ^uint64(0),
		legacy:     legacy,
		ExprLimit:  10,
		TotalLimit: 2048,
	}
	if sc != nil {
		m.byNode = sc.byNode
		m.Groups = sc.groups
		m.scratch = sc.keyScratch
		m.propsBuf = sc.memoProps
		m.schemaBuf = sc.memoSchema
	} else {
		m.byNode = make(map[*plan.Node]*Group)
	}
	if legacy {
		m.legacyIndex = make(map[string]*Group)
	} else if sc != nil {
		m.buckets = sc.buckets
	} else {
		m.buckets = make(map[uint64]*MExpr, 64)
	}
	maxID := plan.ColumnID(0)
	root.Walk(func(n *plan.Node) {
		for _, c := range n.Schema {
			if c.ID > maxID {
				maxID = c.ID
			}
		}
	})
	m.nextCol = maxID
	m.Root = m.groupForNode(root)
	return m
}

// Estimator returns the estimator used to derive group properties. Rules may
// use it for guard conditions (e.g. conjunct ordering by estimated
// selectivity).
func (m *Memo) Estimator() *cost.Estimator { return m.est }

// NewColID allocates a fresh column ID for rule-created columns (e.g.
// partial-aggregation outputs).
func (m *Memo) NewColID() plan.ColumnID {
	m.nextCol++
	return m.nextCol
}

// lookupExpr finds the group already holding a structurally identical
// expression. The returned hash is the expression's interning hash (0 on the
// legacy path) and must be passed unchanged to insertExpr when the caller
// interns a new expression.
func (m *Memo) lookupExpr(n *plan.Node, children []*Group) (*Group, uint64, bool) {
	if m.legacy {
		g, ok := m.legacyIndex[legacyExprKey(n, children)]
		return g, 0, ok
	}
	h := m.exprHash(n, children)
	for e := m.buckets[h]; e != nil; e = e.bucketNext {
		if exprEqual(n, children, e.Node, e.Children) {
			return e.Group, h, true
		}
		m.collisions++
	}
	return nil, h, false
}

// Collisions returns the number of interning hash collisions this memo
// resolved by structural equality.
func (m *Memo) Collisions() uint64 { return m.collisions }

// insertExpr records a newly interned expression in the structural index
// under the hash returned by the matching lookupExpr call. The expression is
// prepended to its bucket chain; chain order is irrelevant because at most
// one chained expression can be structurally equal to any probe.
func (m *Memo) insertExpr(e *MExpr, hash uint64) {
	if m.legacy {
		m.legacyIndex[legacyExprKey(e.Node, e.Children)] = e.Group
		return
	}
	e.bucketNext = m.buckets[hash]
	m.buckets[hash] = e
}

// newMExpr returns a zeroed expression carved from the memo's slab, at most
// one heap allocation per chunk instead of one per expression — usually
// zero, since arena-backed memos recycle chunks across compiles.
func (m *Memo) newMExpr() *MExpr {
	// Fixed small chunks: waste is bounded by one partial tail per memo,
	// which measured strictly better on total bytes than geometric growth
	// (doubling over-reserves roughly 2x the live size on average).
	if len(m.exprSlab) == 0 {
		if m.arena != nil {
			m.exprSlab = m.arena.mexprChunk()
		} else {
			m.exprSlab = make([]MExpr, mexprChunkLen)
		}
	}
	e := &m.exprSlab[0]
	m.exprSlab = m.exprSlab[1:]
	return e
}

// newGroup returns a fresh group with an empty winners map. Arena-backed
// memos carve the struct from a recycled chunk and inherit the slot's
// cleared winners map, so steady-state group creation allocates nothing.
func (m *Memo) newGroup() *Group {
	if m.arena == nil {
		return &Group{winners: make(map[distKey]*winner)}
	}
	if len(m.groupSlab) == 0 {
		m.groupSlab = m.arena.groupChunk()
	}
	g := &m.groupSlab[0]
	m.groupSlab = m.groupSlab[1:]
	if g.winners == nil {
		g.winners = make(map[distKey]*winner)
	}
	return g
}

// exprsSeed returns the initial Exprs slice for a new group: length zero,
// small capacity. Groups usually grow past one expression during
// exploration; a little up-front capacity avoids the append regrowth on the
// optimizer's hottest allocation site without over-reserving for leaves.
func (m *Memo) exprsSeed() []*MExpr {
	if m.arena != nil {
		return m.arena.exprsSeed()
	}
	return make([]*MExpr, 0, exprsSeedCap)
}

// groupSlice carves an n-element child-group slice from a pooled backing
// array, capacity clipped so holders cannot append into a neighbour. Carved
// before any recursive interning fills it; the pool cursor only advances, so
// a slice is never handed out twice.
func (m *Memo) groupSlice(n int) []*Group {
	if n == 0 {
		return nil
	}
	if len(m.groupPool) < n {
		if m.arena != nil && n <= gsliceChunkLen {
			m.groupPool = m.arena.gsliceChunk()
		} else {
			size := gsliceChunkLen
			if n > size {
				size = n
			}
			m.groupPool = make([]*Group, size)
		}
	}
	s := m.groupPool[:n:n]
	m.groupPool = m.groupPool[n:]
	return s
}

// groupForNode interns the logical DAG bottom-up, preserving sharing: a
// *plan.Node consumed by several parents maps to one group.
func (m *Memo) groupForNode(n *plan.Node) *Group {
	if g, ok := m.byNode[n]; ok {
		return g
	}
	children := m.groupSlice(len(n.Children))
	for i, c := range n.Children {
		children[i] = m.groupForNode(c)
	}
	payload := m.shallow(n)
	known, h, ok := m.lookupExpr(payload, children)
	if ok {
		m.byNode[n] = known
		return known
	}
	g := m.newGroup()
	g.ID = GroupID(len(m.Groups))
	g.Schema = n.Schema
	e := m.newMExpr()
	*e = MExpr{Node: payload, Children: children, Group: g, RuleID: -1}
	g.Exprs = append(m.exprsSeed(), e)
	g.Props = m.deriveProps(e)
	m.Groups = append(m.Groups, g)
	m.insertExpr(e, h)
	m.byNode[n] = g
	m.totalExprs++
	return g
}

// shallow copies a node payload without children.
func shallow(n *plan.Node) *plan.Node {
	cp := *n
	cp.Children = nil
	return &cp
}

// shallow copies a node payload without children, carving the copy from the
// arena when one is available. The copy is only ever reachable through
// memo-scoped structures (MExpr.Node, pexpr.node): extraction copies payload
// slice headers out of it but never the struct, so it recycles with the
// arena.
func (m *Memo) shallow(n *plan.Node) *plan.Node {
	if m.arena == nil {
		return shallow(n)
	}
	if len(m.nodeSlab) == 0 {
		m.nodeSlab = m.arena.nodeChunk()
	}
	cp := &m.nodeSlab[0]
	m.nodeSlab = m.nodeSlab[1:]
	*cp = *n
	cp.Children = nil
	return cp
}

// Full reports whether the memo's exploration budget is exhausted.
func (m *Memo) Full() bool { return m.totalExprs >= m.TotalLimit }

// TotalExprs returns the number of expressions interned so far. It is
// maintained incrementally by groupForNode and intern, so reading it never
// walks the groups.
func (m *Memo) TotalExprs() int { return m.totalExprs }

// RNode describes a rule's output: a new operator payload over children that
// are either existing groups or further new sub-expressions.
type RNode struct {
	Node     *plan.Node // payload; Children unused
	Children []RChild
}

// RChild is one child of an RNode: exactly one of Group and Sub is set.
type RChild struct {
	Group *Group
	Sub   *RNode
}

// GroupChild wraps an existing group as a rule-output child.
func GroupChild(g *Group) RChild { return RChild{Group: g} }

// SubChild wraps a new sub-expression as a rule-output child.
func SubChild(r *RNode) RChild { return RChild{Sub: r} }

// Intern inserts a rule result into the memo. The root expression joins
// target (the group of the matched expression); sub-expressions are interned
// into existing structurally identical groups or fresh ones. from is the
// matched expression (for provenance); ruleID identifies the applying rule.
// It returns true if any new expression was added.
func (m *Memo) Intern(rn *RNode, target *Group, from *MExpr, ruleID int) bool {
	if m.Full() {
		return false
	}
	prov := from.Provenance
	if ruleID >= 0 {
		prov.Set(ruleID)
	}
	_, added := m.intern(rn, target, prov, ruleID)
	return added
}

func (m *Memo) intern(rn *RNode, target *Group, prov bitvec.Vector, ruleID int) (*Group, bool) {
	added := false
	children := m.groupSlice(len(rn.Children))
	for i, c := range rn.Children {
		if c.Group != nil {
			children[i] = c.Group
			continue
		}
		g, subAdded := m.intern(c.Sub, nil, prov, ruleID)
		children[i] = g
		added = added || subAdded
	}
	g, h, ok := m.lookupExpr(rn.Node, children)
	if ok {
		// Expression already known. If it is known in a different group
		// than the target, the two groups are semantically equal but we
		// do not merge groups (a standard simplification); the duplicate
		// is dropped.
		return g, added
	}
	g = target
	if g == nil {
		g = m.newGroup()
		g.ID = GroupID(len(m.Groups))
		g.Schema = rn.Node.Schema
		g.Exprs = m.exprsSeed()
		m.Groups = append(m.Groups, g)
	}
	if len(g.Exprs) >= m.ExprLimit && target != nil {
		return g, added
	}
	e := m.newMExpr()
	*e = MExpr{Node: rn.Node, Children: children, Group: g, RuleID: ruleID, Provenance: prov}
	g.Exprs = append(g.Exprs, e)
	m.insertExpr(e, h)
	m.totalExprs++
	if target == nil {
		g.Props = m.deriveProps(e)
	}
	return g, true
}

// FNV-1a constants (hash/fnv, inlined so hashing runs over the scratch
// buffer without an allocation or interface call).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// exprHash serializes the structural key of an expression into the memo's
// reusable scratch buffer and returns its FNV-1a hash. The serialized fields
// are exactly those exprEqual compares: operator, payload, schema column IDs
// and child group IDs.
func (m *Memo) exprHash(n *plan.Node, children []*Group) uint64 {
	b := appendExprKey(m.scratch[:0], n, children)
	m.scratch = b
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h & m.hashMask
}

// appendExprKey appends the structural interning key of an expression:
// operator, payload (with column IDs and literal values), schema column IDs
// and child group IDs. The encoding only needs to be deterministic — equal
// expressions serialize identically; collisions between unequal expressions
// are resolved by exprEqual.
func appendExprKey(b []byte, n *plan.Node, children []*Group) []byte {
	b = binary.AppendUvarint(b, uint64(n.Op))
	switch n.Op {
	case plan.OpGet:
		b = appendKeyStr(b, n.Table)
		b = appendKeyExpr(b, n.Pred)
	case plan.OpSelect, plan.OpJoin:
		b = appendKeyExpr(b, n.Pred)
	case plan.OpProject:
		for _, p := range n.Projs {
			b = binary.AppendUvarint(b, uint64(p.Out.ID))
			b = appendKeyExpr(b, p.Expr)
		}
	case plan.OpGroupBy:
		for _, k := range n.GroupKeys {
			b = binary.AppendUvarint(b, uint64(k.ID))
		}
		b = append(b, 0xfe) // keys/aggs separator
		for _, a := range n.Aggs {
			b = appendKeyStr(b, a.Fn)
			b = binary.AppendUvarint(b, uint64(a.Out.ID))
			b = appendKeyExpr(b, a.Arg)
		}
	case plan.OpProcess:
		b = appendKeyStr(b, n.Processor)
	case plan.OpReduce:
		b = appendKeyStr(b, n.Processor)
		for _, k := range n.ReduceKeys {
			b = binary.AppendUvarint(b, uint64(k.ID))
		}
	case plan.OpTop:
		b = binary.AppendUvarint(b, uint64(n.TopN))
		for _, k := range n.SortKeys {
			b = binary.AppendUvarint(b, uint64(k.Col.ID))
			if k.Desc {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	case plan.OpOutput:
		b = appendKeyStr(b, n.OutputPath)
	default:
		// OpUnionAll, OpMulti: structure alone (children below) is the key.
	}
	// Schema IDs distinguish otherwise identical payloads over different
	// column identities (e.g. two scans of the same stream bound twice).
	b = append(b, 0xfd)
	for _, c := range n.Schema {
		b = binary.AppendUvarint(b, uint64(c.ID))
	}
	b = append(b, 0xfd)
	for _, g := range children {
		b = binary.AppendUvarint(b, uint64(g.ID))
	}
	return b
}

func appendKeyStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendKeyExpr(b []byte, e *plan.Expr) []byte {
	if e == nil {
		return append(b, 0xff)
	}
	b = append(b, '(')
	b = binary.AppendUvarint(b, uint64(e.Kind))
	switch e.Kind {
	case plan.ExprColumn:
		b = binary.AppendUvarint(b, uint64(e.Col.ID))
	case plan.ExprConst:
		b = appendKeyLiteral(b, e.Lit)
	case plan.ExprCmp, plan.ExprArith:
		b = binary.AppendUvarint(b, uint64(e.Op))
	case plan.ExprFunc:
		b = appendKeyStr(b, e.Fn)
	}
	for _, a := range e.Args {
		b = appendKeyExpr(b, a)
	}
	return append(b, ')')
}

func appendKeyLiteral(b []byte, l plan.Literal) []byte {
	if l.IsString {
		b = append(b, 's')
		return appendKeyStr(b, l.S)
	}
	b = append(b, 'f')
	if math.IsNaN(l.F) {
		// Canonicalize NaN payloads so literals that compare equal under
		// literalEqual always hash identically.
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(math.NaN()))
	}
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(l.F))
}

// exprEqual reports structural equality of an interning probe against a
// stored expression. It compares exactly the fields appendExprKey hashes, so
// the (hash, equality) pair behaves like the former string key: equal
// expressions always collide, and colliding unequal expressions are told
// apart here.
func exprEqual(n1 *plan.Node, ch1 []*Group, n2 *plan.Node, ch2 []*Group) bool {
	if n1.Op != n2.Op || len(ch1) != len(ch2) || len(n1.Schema) != len(n2.Schema) {
		return false
	}
	for i := range ch1 {
		if ch1[i] != ch2[i] {
			return false
		}
	}
	for i := range n1.Schema {
		if n1.Schema[i].ID != n2.Schema[i].ID {
			return false
		}
	}
	switch n1.Op {
	case plan.OpGet:
		return n1.Table == n2.Table && keyExprEqual(n1.Pred, n2.Pred)
	case plan.OpSelect, plan.OpJoin:
		return keyExprEqual(n1.Pred, n2.Pred)
	case plan.OpProject:
		if len(n1.Projs) != len(n2.Projs) {
			return false
		}
		for i := range n1.Projs {
			if n1.Projs[i].Out.ID != n2.Projs[i].Out.ID || !keyExprEqual(n1.Projs[i].Expr, n2.Projs[i].Expr) {
				return false
			}
		}
		return true
	case plan.OpGroupBy:
		if len(n1.GroupKeys) != len(n2.GroupKeys) || len(n1.Aggs) != len(n2.Aggs) {
			return false
		}
		for i := range n1.GroupKeys {
			if n1.GroupKeys[i].ID != n2.GroupKeys[i].ID {
				return false
			}
		}
		for i := range n1.Aggs {
			a1, a2 := &n1.Aggs[i], &n2.Aggs[i]
			if a1.Fn != a2.Fn || a1.Out.ID != a2.Out.ID || !keyExprEqual(a1.Arg, a2.Arg) {
				return false
			}
		}
		return true
	case plan.OpProcess:
		return n1.Processor == n2.Processor
	case plan.OpReduce:
		if n1.Processor != n2.Processor || len(n1.ReduceKeys) != len(n2.ReduceKeys) {
			return false
		}
		for i := range n1.ReduceKeys {
			if n1.ReduceKeys[i].ID != n2.ReduceKeys[i].ID {
				return false
			}
		}
		return true
	case plan.OpTop:
		if n1.TopN != n2.TopN || len(n1.SortKeys) != len(n2.SortKeys) {
			return false
		}
		for i := range n1.SortKeys {
			if n1.SortKeys[i].Col.ID != n2.SortKeys[i].Col.ID || n1.SortKeys[i].Desc != n2.SortKeys[i].Desc {
				return false
			}
		}
		return true
	case plan.OpOutput:
		return n1.OutputPath == n2.OutputPath
	default:
		// OpUnionAll, OpMulti: structure alone (children above) is the key.
		return true
	}
}

func keyExprEqual(a, b *plan.Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || len(a.Args) != len(b.Args) {
		return false
	}
	switch a.Kind {
	case plan.ExprColumn:
		if a.Col.ID != b.Col.ID {
			return false
		}
	case plan.ExprConst:
		if !literalEqual(a.Lit, b.Lit) {
			return false
		}
	case plan.ExprCmp, plan.ExprArith:
		if a.Op != b.Op {
			return false
		}
	case plan.ExprFunc:
		if a.Fn != b.Fn {
			return false
		}
	}
	for i := range a.Args {
		if !keyExprEqual(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// literalEqual matches the equality the former string keys induced: exact
// bit equality for numbers (so +0 and -0 stay distinct, as their decimal
// renderings were), with all NaNs equal (they all rendered "NaN").
func literalEqual(a, b plan.Literal) bool {
	if a.IsString != b.IsString {
		return false
	}
	if a.IsString {
		return a.S == b.S
	}
	if math.IsNaN(a.F) || math.IsNaN(b.F) {
		return math.IsNaN(a.F) && math.IsNaN(b.F)
	}
	return math.Float64bits(a.F) == math.Float64bits(b.F)
}

// deriveProps computes a group's estimated statistics from one expression.
// The child slices are reusable scratch (read-only to the estimator); every
// child group is fully interned before the call, so nothing re-enters the
// memo while they are live.
func (m *Memo) deriveProps(e *MExpr) cost.Props {
	childProps := m.propsBuf[:0]
	childSchemas := m.schemaBuf[:0]
	for _, c := range e.Children {
		childProps = append(childProps, c.Props)
		childSchemas = append(childSchemas, c.Schema)
	}
	m.propsBuf, m.schemaBuf = childProps, childSchemas
	return m.DerivePropsFrom(e.Node, childProps, childSchemas, e.Group.Schema)
}

// DerivePropsFrom estimates one operator's output statistics from explicit
// child statistics. The physical search uses it to cost every candidate from
// its *own* expression tree rather than canonical group statistics — which is
// why the same job recompiled under different rule configurations can come
// out with different (and sometimes lower) estimated costs: "the costs across
// recompilation runs with different rules are not directly comparable" (§5.3).
func (m *Memo) DerivePropsFrom(n *plan.Node, childProps []cost.Props, childSchemas [][]plan.Column, outSchema []plan.Column) cost.Props {
	switch n.Op {
	case plan.OpGet:
		return m.est.Scan(n.Table, n.Schema, n.Pred)
	case plan.OpSelect:
		return m.est.Filter(childProps[0], n.Pred)
	case plan.OpProject:
		return m.est.Project(childProps[0], n.Projs)
	case plan.OpJoin:
		return m.est.Join(childProps[0], childProps[1], n.Pred)
	case plan.OpGroupBy:
		return m.est.GroupBy(childProps[0], n.GroupKeys, n.Aggs)
	case plan.OpUnionAll:
		return m.est.UnionAll(childProps, childSchemas, outSchema)
	case plan.OpProcess:
		return m.est.Process(childProps[0], n.Processor)
	case plan.OpReduce:
		return m.est.Reduce(childProps[0], n.ReduceKeys, n.Processor)
	case plan.OpTop:
		return m.est.Top(childProps[0], n.TopN)
	case plan.OpOutput:
		return childProps[0]
	case plan.OpMulti:
		var p cost.Props
		p.NDV = map[plan.ColumnID]float64{}
		for _, cp := range childProps {
			p.Rows += cp.Rows
			p.RowBytes = maxFloat(p.RowBytes, cp.RowBytes)
		}
		return p
	}
	return cost.Props{Rows: 1, RowBytes: 8, NDV: map[plan.ColumnID]float64{}}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
