// Behavioral tests of the Cascades engine driven through the real rule
// catalog (external test package to use internal/rules without a cycle).
package cascades_test

import (
	"errors"
	"strings"
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/plan"
	"steerq/internal/rules"
	"steerq/internal/scopeql"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "f1",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 5000, TrueDistinct: 5000, Min: 0, Max: 5000, Skew: 1.0},
			{Name: "k2", Distinct: 300, TrueDistinct: 300, Min: 0, Max: 300},
			{Name: "v", Distinct: 1000, TrueDistinct: 1000, Min: 0, Max: 500},
			{Name: "flag", Distinct: 10, TrueDistinct: 10, Min: 0, Max: 10},
		},
		BaseRows: 5e7, BytesPerRow: 80, DailySigma: 0.2, GrowthPerDay: 1,
	})
	cat.AddStream(&catalog.Stream{
		Name: "f2",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 5000, TrueDistinct: 4800, Min: 0, Max: 5000},
			{Name: "w", Distinct: 800, TrueDistinct: 800, Min: 0, Max: 400},
		},
		BaseRows: 2e7, BytesPerRow: 60, DailySigma: 0.2, GrowthPerDay: 1,
	})
	cat.AddStream(&catalog.Stream{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 5000, TrueDistinct: 5000, Min: 0, Max: 5000},
			{Name: "attr", Distinct: 25, TrueDistinct: 25, Min: 0, Max: 25},
		},
		BaseRows: 5000, BytesPerRow: 40, GrowthPerDay: 1,
	})
	cat.AddUDO(&catalog.UDO{Name: "Cook", EstFactor: 1, TrueFactor: 2, CPUPerRow: 3})
	return cat
}

func newOpt(cat *catalog.Catalog) *cascades.Optimizer {
	return rules.NewOptimizer(cost.NewEstimated(cat))
}

func compile(t *testing.T, cat *catalog.Catalog, src string) *plan.Node {
	t.Helper()
	root, err := scopeql.Compile(src, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return root
}

const joinAggScript = `
f = SELECT k, v FROM "f1" WHERE v > 100 AND flag == 3;
j = SELECT f.k AS k, d.attr AS attr, f.v AS v FROM f INNER JOIN "dim" AS d ON f.k == d.k;
a = SELECT attr, SUM(v) AS total, COUNT(*) AS cnt FROM j GROUP BY attr;
OUTPUT a TO "out/x";
`

const unionScript = `
b1 = SELECT k, v FROM "f1" WHERE v > 50;
b2 = SELECT k, w FROM "f2" WHERE w > 10;
u = b1 UNION ALL b2;
a = SELECT k, SUM(v) AS total FROM u GROUP BY k;
OUTPUT a TO "out/u";
`

func TestOptimizeDeterministic(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	cfg := opt.Rules.DefaultConfig()
	r1, err := opt.Optimize(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := opt.Optimize(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Fatalf("cost varies: %v vs %v", r1.Cost, r2.Cost)
	}
	if !r1.Signature.Equal(r2.Signature) {
		t.Fatal("signature varies across identical compilations")
	}
	if r1.Plan.String() != r2.Plan.String() {
		t.Fatal("plan varies across identical compilations")
	}
}

func TestSignatureSubsetOfEnabled(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, unionScript)
	cfg := opt.Rules.DefaultConfig()
	res, err := opt.Optimize(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Signature.Ones() {
		ri, ok := opt.Rules.Info(id)
		if !ok {
			t.Fatalf("signature bit %d has no rule", id)
		}
		if ri.Category != cascades.Required && !cfg.Get(id) {
			t.Fatalf("disabled rule %s appears in signature", ri)
		}
	}
}

func TestDisabledRuleNeverContributes(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	cfg := opt.Rules.DefaultConfig()
	res, err := opt.Optimize(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Disable every non-required rule used by the default plan; none may
	// reappear.
	disabled := cfg
	for _, id := range res.Signature.Ones() {
		if ri, _ := opt.Rules.Info(id); ri.Category != cascades.Required {
			disabled.Clear(id)
		}
	}
	res2, err := opt.Optimize(root, disabled)
	if err != nil {
		// Legal: disabling used implementation rules can make the job
		// uncompilable. ErrNoPlan is the only acceptable error.
		if !errors.Is(err, cascades.ErrNoPlan) {
			t.Fatal(err)
		}
		return
	}
	for _, id := range res2.Signature.Ones() {
		ri, _ := opt.Rules.Info(id)
		if ri.Category != cascades.Required && !disabled.Get(id) {
			t.Fatalf("disabled rule %s contributed to the plan", ri)
		}
	}
}

func TestNoPlanWhenJoinImplsDisabled(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	cfg := opt.Rules.DefaultConfig()
	for _, id := range []int{rules.IDHashJoinImpl1, rules.IDJoinImpl2, rules.IDMergeJoinImpl, rules.IDJoinToApplyIndex1} {
		cfg.Clear(id)
	}
	// Also disable the off-by-default rewrites that could eliminate the
	// join... none can, so compilation must fail.
	_, err := opt.Optimize(root, cfg)
	if !errors.Is(err, cascades.ErrNoPlan) {
		t.Fatalf("want ErrNoPlan, got %v", err)
	}
}

func TestJoinImplChoiceFollowsConfig(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)

	base := opt.Rules.DefaultConfig()
	only := func(keep int) bitvec.Vector {
		cfg := base
		for _, id := range []int{rules.IDHashJoinImpl1, rules.IDJoinImpl2, rules.IDMergeJoinImpl, rules.IDJoinToApplyIndex1} {
			if id != keep {
				cfg.Clear(id)
			}
		}
		return cfg
	}
	wantOp := map[int]plan.PhysOp{
		rules.IDHashJoinImpl1:     plan.PhysHashJoin,
		rules.IDJoinImpl2:         plan.PhysHashJoinAlt,
		rules.IDMergeJoinImpl:     plan.PhysMergeJoin,
		rules.IDJoinToApplyIndex1: plan.PhysLoopJoin,
	}
	for keep, op := range wantOp {
		res, err := opt.Optimize(root, only(keep))
		if err != nil {
			t.Fatalf("impl %d: %v", keep, err)
		}
		found := false
		res.Plan.Walk(func(n *plan.PhysNode) {
			if n.Op == op {
				found = true
			}
		})
		if !found {
			t.Errorf("forcing impl rule %d did not produce %v:\n%s", keep, op, res.Plan)
		}
		if !res.Signature.Get(keep) {
			t.Errorf("signature missing forced impl rule %d", keep)
		}
	}
}

func TestUnionImplChoiceFollowsConfig(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, unionScript)
	base := opt.Rules.DefaultConfig()

	cfgMerge := base
	cfgMerge.Clear(rules.IDUnionAllToVirtualDS)
	resMerge, err := opt.Optimize(root, cfgMerge)
	if err != nil {
		t.Fatal(err)
	}
	if !resMerge.Signature.Get(rules.IDUnionAllToUnionAll) {
		t.Error("merge-only config did not use UnionAllToUnionAll")
	}

	cfgVirtual := base
	cfgVirtual.Clear(rules.IDUnionAllToUnionAll)
	resVirtual, err := opt.Optimize(root, cfgVirtual)
	if err != nil {
		t.Fatal(err)
	}
	// The virtual config may bypass the union entirely via
	// GroupbyBelowUnionAll; check the union impl only if a union survived.
	hasUnionOp := false
	resVirtual.Plan.Walk(func(n *plan.PhysNode) {
		if n.Op == plan.PhysVirtualDataset || n.Op == plan.PhysUnionMerge {
			hasUnionOp = true
			if n.Op == plan.PhysUnionMerge {
				t.Error("virtual-only config materialized the union")
			}
		}
	})
	_ = hasUnionOp
}

func TestNonEquiJoinNeedsLoopJoin(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, `
f = SELECT k, v FROM "f1" WHERE v > 400;
j = SELECT f.v AS v, d.attr AS attr FROM f INNER JOIN "dim" AS d ON f.k >= d.k;
OUTPUT j TO "out/theta";
`)
	cfg := opt.Rules.DefaultConfig()
	res, err := opt.Optimize(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	res.Plan.Walk(func(n *plan.PhysNode) {
		if n.Op == plan.PhysLoopJoin {
			found = true
		}
	})
	if !found {
		t.Fatalf("theta join should force a loop join:\n%s", res.Plan)
	}
	// Disabling the loop join leaves the theta join unimplementable.
	cfg.Clear(rules.IDJoinToApplyIndex1)
	if _, err := opt.Optimize(root, cfg); !errors.Is(err, cascades.ErrNoPlan) {
		t.Fatalf("want ErrNoPlan for theta join without apply, got %v", err)
	}
}

func TestOffByDefaultRuleFiresWhenEnabled(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, `
b1 = SELECT k, v FROM "f1" WHERE v > 50;
b2 = SELECT k, w FROM "f2" WHERE w > 10;
u = b1 UNION ALL b2;
j = SELECT u.k AS k, d.attr AS attr, u.v AS v FROM u INNER JOIN "dim" AS d ON u.k == d.k;
a = SELECT attr, SUM(v) AS total FROM j GROUP BY attr;
OUTPUT a TO "out/cju";
`)
	// Default: the correlated-join family is off.
	def, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if def.Signature.Get(rules.IDCorrelatedJoinOnUnionAll1) {
		t.Fatal("off-by-default rule fired under the default configuration")
	}
	// The correlated-join rewrite distributes the join over the union but
	// still leaves a UnionAll at the top, so it cannot substitute for a
	// union implementation: with both union implementations disabled the
	// job must fail to compile — one of the "implicit dependencies" that
	// make many candidate configurations uncompilable (§4).
	cfg := bitvec.AllSet(bitvec.Width)
	cfg.Clear(rules.IDUnionAllToUnionAll)
	cfg.Clear(rules.IDUnionAllToVirtualDS)
	if _, err := opt.Optimize(root, cfg); !errors.Is(err, cascades.ErrNoPlan) {
		t.Fatalf("want ErrNoPlan with all union impls disabled, got %v", err)
	}
	// With everything enabled the rewrite participates in the search; its
	// reachability is asserted structurally in internal/rules.
	if _, err := opt.Optimize(root, bitvec.AllSet(bitvec.Width)); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatesVaryAcrossConfigs(t *testing.T) {
	// §5.3's premise: recompiling under different configurations yields
	// different estimated costs for the same job.
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	def, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.Rules.DefaultConfig()
	cfg.Clear(rules.IDSelectPredNormalized)
	cfg.Clear(rules.IDSelectIntoGet)
	cfg.Clear(rules.IDJoinImpl2)
	alt, err := opt.Optimize(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if def.Cost == alt.Cost {
		t.Fatal("estimated cost identical across very different configurations")
	}
}

func TestMemoBudgetRespected(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	opt.TotalLimit = 64
	root := compile(t, cat, unionScript)
	res, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Exprs > 64 {
		t.Fatalf("memo grew to %d expressions past the %d budget", res.Exprs, 64)
	}
}

func TestSignatureContainsRequiredMachinery(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	res, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{rules.IDBuildOutput, rules.IDGetToRange} {
		if !res.Signature.Get(id) {
			t.Errorf("signature lacks required rule %d", id)
		}
	}
}

func TestPlanDAGPreservedForMultiOutput(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, `
f = SELECT k, v FROM "f1" WHERE v > 300;
p = PROCESS f USING Cook;
a = SELECT k, SUM(v) AS total FROM p GROUP BY k;
OUTPUT p TO "out/raw";
OUTPUT a TO "out/agg";
`)
	res, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The Process operator must appear exactly once in the physical DAG.
	count := 0
	res.Plan.Walk(func(n *plan.PhysNode) {
		if n.Op == plan.PhysProcessImpl {
			count++
		}
	})
	if count != 1 {
		t.Fatalf("shared subplan duplicated: %d ProcessImpl nodes", count)
	}
}

func TestNilPlanRejected(t *testing.T) {
	opt := newOpt(testCatalog())
	if _, err := opt.Optimize(nil, opt.Rules.DefaultConfig()); err == nil {
		t.Fatal("nil plan accepted")
	}
}

// TestAllPlansValidate runs every compiled plan of a generated day through
// the structural validator, under the default configuration and a handful of
// perturbed ones.
func TestAllPlansValidate(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	scripts := []string{joinAggScript, unionScript, `
f = SELECT k, v FROM "f1" WHERE v > 200;
rj = REDUCE f ON k USING Cook;
OUTPUT rj TO "out/r";
`, `
f = SELECT k, v FROM "f1" WHERE v > 100;
t = SELECT TOP 50 k, v FROM f ORDER BY v DESC;
OUTPUT t TO "out/t";
`}
	cfgs := []bitvec.Vector{opt.Rules.DefaultConfig(), bitvec.AllSet(bitvec.Width)}
	alt := opt.Rules.DefaultConfig()
	alt.Clear(rules.IDJoinImpl2)
	alt.Clear(rules.IDLocalGlobalAggImpl)
	alt.Clear(rules.IDUnionAllToVirtualDS)
	cfgs = append(cfgs, alt)
	for si, src := range scripts {
		root := compile(t, cat, src)
		for ci, cfg := range cfgs {
			res, err := opt.Optimize(root, cfg)
			if err != nil {
				continue
			}
			if err := cascades.Validate(res.Plan, 50); err != nil {
				t.Errorf("script %d cfg %d: %v\n%s", si, ci, err, res.Plan)
			}
		}
	}
}

func TestValidateCatchesBrokenPlans(t *testing.T) {
	k := plan.Column{ID: 1, Name: "k", Source: "f1.k"}
	schema := []plan.Column{k}
	good := &plan.PhysNode{Op: plan.PhysExtract, Table: "f1", Schema: schema, RuleID: 3,
		Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 4}}
	cases := map[string]*plan.PhysNode{
		"zero DOP": {Op: plan.PhysFilter, Schema: schema, RuleID: 4,
			Children: []*plan.PhysNode{good},
			Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: 0}},
		"missing rule attribution": {Op: plan.PhysFilter, Schema: schema, RuleID: -1,
			Children: []*plan.PhysNode{good},
			Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: 4}},
		"hash without keys": {Op: plan.PhysFilter, Schema: schema, RuleID: 4,
			Children: []*plan.PhysNode{good},
			Dist:     plan.Distribution{Kind: plan.DistHash, DOP: 4}},
		"keyed agg over random input": {Op: plan.PhysHashAgg, Schema: schema, RuleID: 228,
			GroupKeys: schema,
			Children:  []*plan.PhysNode{good},
			Dist:      plan.Distribution{Kind: plan.DistHash, Keys: []plan.ColumnID{1}, DOP: 4}},
		"join arity": {Op: plan.PhysHashJoin, Schema: schema, RuleID: 224,
			Children: []*plan.PhysNode{good},
			Dist:     plan.Distribution{Kind: plan.DistHash, Keys: []plan.ColumnID{1}, DOP: 4}},
	}
	for name, p := range cases {
		if err := cascades.Validate(p, 50); err == nil {
			t.Errorf("%s: validator accepted a broken plan", name)
		}
	}
	if err := cascades.Validate(good, 50); err != nil {
		t.Errorf("validator rejected a good plan: %v", err)
	}
}

// TestValidateReturnsAllViolations injects several independent defects into
// one plan and checks the multi-error Validate reports every one of them,
// not just the first.
func TestValidateReturnsAllViolations(t *testing.T) {
	k := plan.Column{ID: 1, Name: "k", Source: "f1.k"}
	schema := []plan.Column{k}
	scan := &plan.PhysNode{Op: plan.PhysExtract, Table: "f1", Schema: schema, RuleID: 3,
		Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 4}}
	// Defect 1: a broadcast exchange delivering a random distribution.
	exch := &plan.PhysNode{Op: plan.PhysExchange, Exchange: plan.ExchangeBroadcast,
		Schema: schema, RuleID: 0,
		Children: []*plan.PhysNode{scan},
		Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: 4}}
	// Defects 2-4 on the root: schema invents column 9 the child does not
	// produce, DOP exceeds the maximum, and the rule attribution is missing.
	root := &plan.PhysNode{Op: plan.PhysFilter,
		Schema:   []plan.Column{k, {ID: 9, Name: "ghost"}},
		RuleID:   -1,
		Children: []*plan.PhysNode{exch},
		Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: 99}}

	err := cascades.Validate(root, 50)
	if err == nil {
		t.Fatal("validator accepted a plan with four defects")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("Validate did not return a joined multi-error: %T: %v", err, err)
	}
	if n := len(joined.Unwrap()); n < 4 {
		t.Errorf("Validate reported %d violations, want at least 4:\n%v", n, err)
	}
	for _, want := range []string{
		"broadcast delivering",
		"does not preserve child schema",
		"DOP 99 outside [1, 50]",
		"without rule attribution",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing violation %q in:\n%v", want, err)
		}
	}
}

// TestOptimizeCostMatchesOptimize pins the plan-less compile to the full
// one: across a spread of configurations — the default, single-bit
// ablations of the default footprint, and uncompilable variants — both
// paths must agree on outcome, cost, signature, footprint and memo
// statistics, with OptimizeCost returning no plan.
func TestOptimizeCostMatchesOptimize(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	base := opt.Rules.DefaultConfig()
	full, err := opt.Optimize(root, base)
	if err != nil {
		t.Fatal(err)
	}

	configs := []bitvec.Vector{base}
	for _, id := range full.Footprint.Ones() {
		c := base
		c.Assign(id, !c.Get(id))
		configs = append(configs, c)
	}
	// An uncompilable variant: no join implementation survives.
	broken := base
	for _, id := range []int{rules.IDHashJoinImpl1, rules.IDJoinImpl2, rules.IDMergeJoinImpl, rules.IDJoinToApplyIndex1} {
		broken.Clear(id)
	}
	configs = append(configs, broken)

	var noPlan, compiled int
	for _, cfg := range configs {
		want, werr := opt.Optimize(root, cfg)
		got, gerr := opt.OptimizeCost(root, cfg)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("cfg %s: outcome diverged: Optimize err=%v, OptimizeCost err=%v", cfg.Hex(), werr, gerr)
		}
		if werr != nil {
			if !errors.Is(werr, cascades.ErrNoPlan) {
				t.Fatal(werr)
			}
			noPlan++
			if !want.Footprint.Equal(got.Footprint) {
				t.Fatalf("cfg %s: no-plan footprints diverged", cfg.Hex())
			}
			continue
		}
		compiled++
		if got.Plan != nil {
			t.Fatalf("cfg %s: OptimizeCost materialized a plan", cfg.Hex())
		}
		if want.Cost != got.Cost {
			t.Fatalf("cfg %s: cost %v vs %v", cfg.Hex(), want.Cost, got.Cost)
		}
		if !want.Signature.Equal(got.Signature) {
			t.Fatalf("cfg %s: signatures diverged: %s vs %s", cfg.Hex(), want.Signature.Hex(), got.Signature.Hex())
		}
		if !want.Footprint.Equal(got.Footprint) {
			t.Fatalf("cfg %s: footprints diverged", cfg.Hex())
		}
		if want.Groups != got.Groups || want.Exprs != got.Exprs {
			t.Fatalf("cfg %s: memo stats diverged: %d/%d vs %d/%d",
				cfg.Hex(), want.Groups, want.Exprs, got.Groups, got.Exprs)
		}
	}
	if compiled == 0 {
		t.Fatal("no configuration compiled; the equivalence check is vacuous")
	}
	t.Logf("checked %d configs: %d compiled, %d no-plan", len(configs), compiled, noPlan)
}
