package cascades

import (
	"fmt"
	"sort"

	"steerq/internal/bitvec"
	"steerq/internal/plan"
)

// Category classifies optimizer rules per §3.2 of the paper.
type Category int

// Rule categories (Table 2).
const (
	// Required rules are necessary for correctness (EnforceExchange,
	// BuildOutput, ...). They ignore the rule configuration.
	Required Category = iota
	// OffByDefault rules are experimental or unsafe under mis-estimates
	// (the CorrelatedJoinOnUnion family, ...). Disabled in the default
	// configuration.
	OffByDefault
	// OnByDefault rules are the bulk of optimization rules: rewrites,
	// join order, aggregation and sorting rules.
	OnByDefault
	// Implementation rules pick physical implementations of logical
	// operators; at least one per operator type must stay enabled for a
	// job to compile.
	Implementation
)

var categoryNames = [...]string{"required", "off-by-default", "on-by-default", "implementation"}

func (c Category) String() string { return categoryNames[c] }

// RuleInfo is the identity and classification of one rule. IDs are stable
// across the catalog and index rule configurations and signatures
// (bit i of a bitvec.Vector corresponds to rule ID i).
type RuleInfo struct {
	ID       int
	Name     string
	Category Category
}

func (ri RuleInfo) String() string { return fmt.Sprintf("%s#%d(%s)", ri.Name, ri.ID, ri.Category) }

// TransformRule rewrites a logical expression into equivalent logical
// expressions.
type TransformRule interface {
	Info() RuleInfo
	// Apply returns zero or more equivalent expressions for e. Returned
	// RNodes join e's group. Apply must not mutate e or the memo besides
	// allocating column IDs via m.NewColID.
	Apply(e *MExpr, m *Memo) []*RNode
}

// PhysProto describes one physical implementation candidate produced by an
// implementation rule.
type PhysProto struct {
	// Op is the physical operator.
	Op plan.PhysOp
	// Node is the operator payload (usually the matched logical payload,
	// possibly adjusted).
	Node *plan.Node
	// ChildReq lists the required distribution per child (DOP fields are
	// ignored; the engine derives degrees of parallelism).
	ChildReq []plan.Distribution
	// OutDist is the distribution the operator delivers given satisfied
	// child requirements.
	OutDist plan.Distribution
	// BuildIdx marks the build side for join operators (-1 otherwise).
	BuildIdx int
	// NeedsSort asks the engine to insert a Sort enforcer on each child
	// (merge join, stream aggregation).
	NeedsSort bool
	// LocalPre, when non-zero, asks the engine to run this per-partition
	// operator on child 0 before enforcing the child requirement: the
	// local phase of two-phase aggregation or top-N.
	LocalPre plan.PhysOp
}

// ImplementRule produces physical implementation candidates for a logical
// expression.
type ImplementRule interface {
	Info() RuleInfo
	// Implement returns candidates for e, or nil when the rule does not
	// apply to e's operator.
	Implement(e *MExpr, m *Memo) []*PhysProto
}

// OpMatcher is an optional interface on rules that only ever match one
// logical operator (every catalog rule opens with `if e.Node.Op != plan.OpX
// { return nil }`). Declaring the operator lets the optimizer consult the
// rule only on expressions it could match, which both skips the dead
// Apply/Implement calls and keeps the decision footprint (the set of
// enabled-bits actually read — see search.ruleEnabled) tight: a rule whose
// operator never appears in the memo leaves no footprint bit, so more
// configurations fall into the same equivalence class.
//
// The contract is strict: for any expression whose operator differs from
// MatchOp(), Apply/Implement must return nil without side effects. Rules
// that omit the interface are consulted on every expression, exactly as
// before.
type OpMatcher interface {
	MatchOp() plan.Op
}

// RuleSet is the rule catalog handed to the optimizer.
type RuleSet struct {
	Transforms []TransformRule
	Implements []ImplementRule

	infos map[int]RuleInfo

	// Per-operator projections of Transforms/Implements, built by
	// NewRuleSet from the OpMatcher declarations. Each list preserves the
	// catalog order and includes every rule that omits OpMatcher, so
	// iterating a projection is behaviorally identical to iterating the
	// full slice. The *Any lists serve operators no pinned rule matches.
	transformsByOp map[plan.Op][]TransformRule
	transformsAny  []TransformRule
	implementsByOp map[plan.Op][]ImplementRule
	implementsAny  []ImplementRule
}

// NewRuleSet assembles a rule set and verifies rule IDs are unique and in
// [0, bitvec.Width).
func NewRuleSet(transforms []TransformRule, implements []ImplementRule, extra []RuleInfo) (*RuleSet, error) {
	rs := &RuleSet{Transforms: transforms, Implements: implements, infos: make(map[int]RuleInfo)}
	add := func(ri RuleInfo) error {
		if ri.ID < 0 || ri.ID >= bitvec.Width {
			return fmt.Errorf("cascades: rule %s: ID out of range", ri)
		}
		if prev, dup := rs.infos[ri.ID]; dup {
			return fmt.Errorf("cascades: rule ID %d claimed by both %s and %s", ri.ID, prev.Name, ri.Name)
		}
		rs.infos[ri.ID] = ri
		return nil
	}
	for _, r := range transforms {
		if err := add(r.Info()); err != nil {
			return nil, err
		}
	}
	for _, r := range implements {
		if err := add(r.Info()); err != nil {
			return nil, err
		}
	}
	for _, ri := range extra {
		if err := add(ri); err != nil {
			return nil, err
		}
	}
	rs.indexByOp()
	return rs, nil
}

// ruleOps collects the sorted set of operators pinned by OpMatcher rules in
// a slice (sorted so the projection maps are built in a deterministic
// order, though their content is order-independent either way).
func ruleOps(match func(i int) (plan.Op, bool), n int) []plan.Op {
	seen := make(map[plan.Op]bool, n)
	ops := make([]plan.Op, 0, n)
	for i := 0; i < n; i++ {
		if op, ok := match(i); ok && !seen[op] {
			seen[op] = true
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// indexByOp builds the per-operator rule projections.
func (rs *RuleSet) indexByOp() {
	tOps := ruleOps(func(i int) (plan.Op, bool) {
		m, ok := rs.Transforms[i].(OpMatcher)
		if !ok {
			return 0, false
		}
		return m.MatchOp(), true
	}, len(rs.Transforms))
	rs.transformsByOp = make(map[plan.Op][]TransformRule, len(tOps))
	rs.transformsAny = make([]TransformRule, 0, len(rs.Transforms))
	for _, r := range rs.Transforms {
		if _, ok := r.(OpMatcher); !ok {
			rs.transformsAny = append(rs.transformsAny, r)
		}
	}
	for _, op := range tOps {
		l := make([]TransformRule, 0, len(rs.Transforms))
		for _, r := range rs.Transforms {
			if m, ok := r.(OpMatcher); !ok || m.MatchOp() == op {
				l = append(l, r)
			}
		}
		rs.transformsByOp[op] = l
	}
	iOps := ruleOps(func(i int) (plan.Op, bool) {
		m, ok := rs.Implements[i].(OpMatcher)
		if !ok {
			return 0, false
		}
		return m.MatchOp(), true
	}, len(rs.Implements))
	rs.implementsByOp = make(map[plan.Op][]ImplementRule, len(iOps))
	rs.implementsAny = make([]ImplementRule, 0, len(rs.Implements))
	for _, r := range rs.Implements {
		if _, ok := r.(OpMatcher); !ok {
			rs.implementsAny = append(rs.implementsAny, r)
		}
	}
	for _, op := range iOps {
		l := make([]ImplementRule, 0, len(rs.Implements))
		for _, r := range rs.Implements {
			if m, ok := r.(OpMatcher); !ok || m.MatchOp() == op {
				l = append(l, r)
			}
		}
		rs.implementsByOp[op] = l
	}
}

// transformsFor returns the transforms worth consulting on an expression
// with the given operator. Falls back to the full slice on rule sets built
// as raw literals (tests) that never ran indexByOp.
func (rs *RuleSet) transformsFor(op plan.Op) []TransformRule {
	if rs.transformsByOp == nil {
		return rs.Transforms
	}
	if l, ok := rs.transformsByOp[op]; ok {
		return l
	}
	return rs.transformsAny
}

// implementsFor is transformsFor for implementation rules.
func (rs *RuleSet) implementsFor(op plan.Op) []ImplementRule {
	if rs.implementsByOp == nil {
		return rs.Implements
	}
	if l, ok := rs.implementsByOp[op]; ok {
		return l
	}
	return rs.implementsAny
}

// Info returns the metadata of a rule ID; ok is false for unknown IDs.
func (rs *RuleSet) Info(id int) (RuleInfo, bool) {
	ri, ok := rs.infos[id]
	return ri, ok
}

// Infos returns all registered rule infos, ordered by ID.
func (rs *RuleSet) Infos() []RuleInfo {
	out := make([]RuleInfo, 0, len(rs.infos))
	for id := 0; id < bitvec.Width; id++ {
		if ri, ok := rs.infos[id]; ok {
			out = append(out, ri)
		}
	}
	return out
}

// DefaultConfig returns the default rule configuration (Definition 3.1):
// every rule enabled except the off-by-default category.
func (rs *RuleSet) DefaultConfig() bitvec.Vector {
	var v bitvec.Vector
	for id, ri := range rs.infos {
		if ri.Category != OffByDefault {
			v.Set(id)
		}
	}
	return v
}

// NonRequiredIDs returns the IDs of all rules outside the Required category
// — the "learnable" rules the configuration search may toggle (the paper's
// 219 non-required rules).
func (rs *RuleSet) NonRequiredIDs() []int {
	var out []int
	for id := 0; id < bitvec.Width; id++ {
		if ri, ok := rs.infos[id]; ok && ri.Category != Required {
			out = append(out, id)
		}
	}
	return out
}
