// Package cost implements the two statistics layers of the simulated SCOPE
// optimizer:
//
//   - ModeEstimated — the cardinality estimator and cost model the optimizer
//     uses during plan search. It sees stale base row counts and per-column
//     NDV/min-max statistics, assumes value uniformity and predicate
//     independence (softened by exponential backoff), and trusts fixed row
//     multipliers for user-defined operators.
//
//   - ModeTrue — the ground-truth oracle used by the execution simulator. It
//     sees actual daily row counts, value skew, cross-column correlations and
//     the real expansion of user-defined operators.
//
// Both layers share one code path parameterized by Mode, so the *structure*
// of estimation is identical and only the statistical assumptions differ —
// the same situation as a production optimizer whose formulas are fine but
// whose inputs and independence assumptions are wrong (§1, §5.3 of the
// paper).
package cost

import (
	"steerq/internal/plan"
)

// Mode selects estimated or true statistics.
type Mode int

// Estimation modes.
const (
	ModeEstimated Mode = iota
	ModeTrue
)

// Props are the derived statistical properties of one operator's output.
type Props struct {
	// Rows is the output cardinality.
	Rows float64
	// RowBytes is the average output row width in bytes.
	RowBytes float64
	// NDV maps column IDs to their number of distinct values.
	//
	// NDV maps are shared copy-on-write: a Props value copy aliases the
	// map, and every derivation that would change entries (clampedNDV)
	// clones first. Treat a map reachable from a Props as immutable —
	// mutate only maps you just allocated.
	NDV map[plan.ColumnID]float64
}

// Clone returns a deep copy of p. Most derivations should instead copy the
// Props value and share NDV (see the copy-on-write contract above); Clone
// remains for callers that need a privately mutable map.
func (p Props) Clone() Props {
	ndv := make(map[plan.ColumnID]float64, len(p.NDV))
	for k, v := range p.NDV {
		ndv[k] = v
	}
	return Props{Rows: p.Rows, RowBytes: p.RowBytes, NDV: ndv}
}

// ColNDV returns the distinct count for a column, defaulting to Rows when
// unknown (a safe upper bound).
func (p Props) ColNDV(id plan.ColumnID) float64 {
	if v, ok := p.NDV[id]; ok && v > 0 {
		return v
	}
	return p.Rows
}

// clampNDV clamps every entry to [1, rows] in place. Only call it on a map
// the caller just allocated — shared maps go through clampedNDV instead.
func clampNDV(ndv map[plan.ColumnID]float64, rows float64) {
	for k, v := range ndv {
		if v > rows {
			ndv[k] = rows
		}
		if ndv[k] < 1 {
			ndv[k] = 1
		}
	}
}

// clampedNDV returns ndv with every entry clamped to [1, rows]. When no
// entry needs clamping the input map is returned as-is and shared between
// the old and new Props (the common case on already-clamped chains);
// otherwise a clamped copy is returned, leaving the input untouched. This is
// the copy-on-write half of the Props.NDV contract.
func clampedNDV(ndv map[plan.ColumnID]float64, rows float64) map[plan.ColumnID]float64 {
	dirty := false
	for _, v := range ndv {
		if v > rows || v < 1 {
			dirty = true
			break
		}
	}
	if !dirty {
		return ndv
	}
	out := make(map[plan.ColumnID]float64, len(ndv))
	for k, v := range ndv {
		if v > rows {
			v = rows
		}
		if v < 1 {
			v = 1
		}
		out[k] = v
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
