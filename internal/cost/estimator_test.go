package cost

import (
	"testing"
	"testing/quick"

	"steerq/internal/catalog"
	"steerq/internal/plan"
)

func estCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "s",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 1000, TrueDistinct: 900, Min: 0, Max: 1000, Skew: 1.2},
			{Name: "v", Distinct: 500, TrueDistinct: 500, Min: 0, Max: 100},
			{Name: "f1", Distinct: 10, TrueDistinct: 10, Min: 0, Max: 10},
			{Name: "f2", Distinct: 8, TrueDistinct: 8, Min: 0, Max: 8},
		},
		BaseRows:     1e6,
		BytesPerRow:  64,
		DailySigma:   0.2,
		GrowthPerDay: 1,
		Correlations: []catalog.Correlation{{A: "f1", B: "f2", Factor: 6}},
	})
	cat.AddStream(&catalog.Stream{
		Name: "d",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 1000, TrueDistinct: 900, Min: 0, Max: 1000},
			{Name: "attr", Distinct: 20, TrueDistinct: 20, Min: 0, Max: 20},
		},
		BaseRows:     1000,
		BytesPerRow:  32,
		GrowthPerDay: 1,
	})
	cat.AddUDO(&catalog.UDO{Name: "u", EstFactor: 1, TrueFactor: 3, CPUPerRow: 2})
	return cat
}

func scol(id int, name string) plan.Column {
	return plan.Column{ID: plan.ColumnID(id), Name: name, Source: "s." + name}
}

func dcol(id int, name string) plan.Column {
	return plan.Column{ID: plan.ColumnID(id), Name: name, Source: "d." + name}
}

func sSchema() []plan.Column {
	return []plan.Column{scol(1, "k"), scol(2, "v"), scol(3, "f1"), scol(4, "f2")}
}

func TestScanProps(t *testing.T) {
	cat := estCatalog()
	est := NewEstimated(cat)
	p := est.Scan("s", sSchema(), nil)
	if p.Rows != 1e6 {
		t.Fatalf("estimated scan rows %v", p.Rows)
	}
	if got := p.ColNDV(1); got != 1000 {
		t.Fatalf("k NDV %v", got)
	}
	oracle := NewTrue(cat, 0)
	tp := oracle.Scan("s", sSchema(), nil)
	if tp.Rows == p.Rows {
		t.Fatal("true scan rows identical to stale estimate (no daily drift)")
	}
	if got := tp.ColNDV(1); got != 900 {
		t.Fatalf("true k NDV %v", got)
	}
}

func TestSelectivityClamped(t *testing.T) {
	est := NewEstimated(estCatalog())
	p := est.Scan("s", sSchema(), nil)
	f := func(op uint8, v float64) bool {
		pred := plan.Cmp(plan.CmpOp(op%6), plan.ColExpr(scol(2, "v")), plan.NumExpr(v))
		s := est.Selectivity(pred, p)
		return s > 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffOrderMatters(t *testing.T) {
	// Estimated conjunction selectivity depends on conjunct order; the true
	// oracle's does not. This asymmetry powers SelectPredNormalized.
	cat := estCatalog()
	est := NewEstimated(cat)
	p := est.Scan("s", sSchema(), nil)
	selective := plan.Cmp(plan.OpEQ, plan.ColExpr(scol(3, "f1")), plan.NumExpr(3))
	loose := plan.Cmp(plan.OpGT, plan.ColExpr(scol(2, "v")), plan.NumExpr(10))
	s1 := est.Selectivity(plan.And(selective, loose), p)
	s2 := est.Selectivity(plan.And(loose, selective), p)
	if s1 == s2 {
		t.Fatal("estimated backoff ignores conjunct order")
	}
	if s1 >= s2 {
		t.Fatalf("most-selective-first should give the lower estimate: %v vs %v", s1, s2)
	}
	oracle := NewTrue(cat, 0)
	t1 := oracle.Selectivity(plan.And(selective, loose), p)
	t2 := oracle.Selectivity(plan.And(loose, selective), p)
	if t1 != t2 {
		t.Fatal("true selectivity depends on conjunct order")
	}
}

func TestCorrelationBoost(t *testing.T) {
	cat := estCatalog()
	est := NewEstimated(cat)
	oracle := NewTrue(cat, 0)
	p := est.Scan("s", sSchema(), nil)
	pred := plan.And(
		plan.Cmp(plan.OpEQ, plan.ColExpr(scol(3, "f1")), plan.NumExpr(3)),
		plan.Cmp(plan.OpEQ, plan.ColExpr(scol(4, "f2")), plan.NumExpr(2)),
	)
	se := est.Selectivity(pred, p)
	st := oracle.Selectivity(pred, p)
	if st <= se {
		t.Fatalf("correlated conjunction should be underestimated: est %v true %v", se, st)
	}
}

func TestDisjunctionSelectivity(t *testing.T) {
	est := NewEstimated(estCatalog())
	p := est.Scan("s", sSchema(), nil)
	a := plan.Cmp(plan.OpEQ, plan.ColExpr(scol(3, "f1")), plan.NumExpr(3))
	or := plan.Or(a, plan.Cmp(plan.OpEQ, plan.ColExpr(scol(3, "f1")), plan.NumExpr(4)))
	sa := est.Selectivity(a, p)
	so := est.Selectivity(or, p)
	if so <= sa {
		t.Fatalf("disjunction not wider than one disjunct: %v vs %v", so, sa)
	}
	if so > 1 {
		t.Fatalf("disjunction selectivity %v > 1", so)
	}
}

func TestJoinCardinality(t *testing.T) {
	cat := estCatalog()
	est := NewEstimated(cat)
	l := est.Scan("s", sSchema(), nil)
	r := est.Scan("d", []plan.Column{dcol(10, "k"), dcol(11, "attr")}, nil)
	pred := plan.Cmp(plan.OpEQ, plan.ColExpr(scol(1, "k")), plan.ColExpr(dcol(10, "k")))
	j := est.Join(l, r, pred)
	// Containment: |L||R|/max(ndv) = 1e6*1000/1000 = 1e6.
	if j.Rows < 0.5e6 || j.Rows > 2e6 {
		t.Fatalf("estimated join rows %v, want ~1e6", j.Rows)
	}
	oracle := NewTrue(cat, 0)
	lt := oracle.Scan("s", sSchema(), nil)
	rt := oracle.Scan("d", []plan.Column{dcol(10, "k"), dcol(11, "attr")}, nil)
	jt := oracle.Join(lt, rt, pred)
	// k is skewed: true join output exceeds the uniform prediction scaled
	// by input drift.
	if jt.Rows/lt.Rows <= 1.01*(j.Rows/l.Rows) {
		t.Fatalf("skewed join fan-out missing: est fanout %v true fanout %v", j.Rows/l.Rows, jt.Rows/lt.Rows)
	}
}

func TestCrossJoinWithoutPred(t *testing.T) {
	est := NewEstimated(estCatalog())
	l := est.Scan("s", sSchema(), nil)
	r := est.Scan("d", []plan.Column{dcol(10, "k")}, nil)
	j := est.Join(l, r, nil)
	if j.Rows != l.Rows*r.Rows {
		t.Fatalf("cross join rows %v, want %v", j.Rows, l.Rows*r.Rows)
	}
}

func TestGroupByCaps(t *testing.T) {
	est := NewEstimated(estCatalog())
	in := est.Scan("s", sSchema(), nil)
	g := est.GroupBy(in, []plan.Column{scol(1, "k")}, []plan.Agg{{Fn: "COUNT", Out: plan.Column{ID: 99, Name: "c"}}})
	if g.Rows > in.Rows {
		t.Fatal("groupby output exceeds input")
	}
	if g.Rows != 1000 {
		t.Fatalf("groupby rows %v, want key NDV 1000", g.Rows)
	}
	// Keyless aggregation: one row.
	g0 := est.GroupBy(in, nil, []plan.Agg{{Fn: "COUNT", Out: plan.Column{ID: 99, Name: "c"}}})
	if g0.Rows != 1 {
		t.Fatalf("global agg rows %v", g0.Rows)
	}
}

func TestUnionAllSums(t *testing.T) {
	est := NewEstimated(estCatalog())
	a := est.Scan("s", sSchema(), nil)
	b := est.Scan("s", sSchema(), nil)
	out := est.UnionAll(
		[]Props{a, b},
		[][]plan.Column{sSchema(), sSchema()},
		sSchema(),
	)
	if out.Rows != a.Rows+b.Rows {
		t.Fatalf("union rows %v", out.Rows)
	}
}

func TestProcessFactors(t *testing.T) {
	cat := estCatalog()
	est := NewEstimated(cat)
	oracle := NewTrue(cat, 0)
	in := est.Scan("s", sSchema(), nil)
	pe := est.Process(in, "u")
	pt := oracle.Process(in, "u")
	if pe.Rows != in.Rows {
		t.Fatalf("estimated UDO factor should be 1: %v", pe.Rows)
	}
	if pt.Rows != 3*in.Rows {
		t.Fatalf("true UDO factor should be 3: %v", pt.Rows)
	}
}

func TestTopCaps(t *testing.T) {
	est := NewEstimated(estCatalog())
	in := est.Scan("s", sSchema(), nil)
	if got := est.Top(in, 100).Rows; got != 100 {
		t.Fatalf("top rows %v", got)
	}
	small := Props{Rows: 5, NDV: map[plan.ColumnID]float64{}}
	if got := est.Top(small, 100).Rows; got != 5 {
		t.Fatalf("top of small input %v", got)
	}
}

func TestProjectNDVPropagation(t *testing.T) {
	est := NewEstimated(estCatalog())
	in := est.Scan("s", sSchema(), nil)
	out := est.Project(in, []plan.Projection{
		{Expr: plan.ColExpr(scol(1, "k")), Out: scol(1, "k")},
		{Expr: plan.Cmp(plan.OpAdd, plan.ColExpr(scol(2, "v")), plan.NumExpr(1)), Out: plan.Column{ID: 50, Name: "vx"}},
	})
	if out.ColNDV(1) != in.ColNDV(1) {
		t.Fatal("pass-through NDV lost")
	}
	if out.ColNDV(50) != in.Rows {
		t.Fatalf("computed column NDV %v, want rows", out.ColNDV(50))
	}
}

func TestFilterReducesRowsMonotonically(t *testing.T) {
	est := NewEstimated(estCatalog())
	in := est.Scan("s", sSchema(), nil)
	f := func(v float64) bool {
		pred := plan.Cmp(plan.OpGT, plan.ColExpr(scol(2, "v")), plan.NumExpr(v))
		out := est.Filter(in, pred)
		return out.Rows >= 1 && out.Rows <= in.Rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
