package cost

import (
	"testing"
	"testing/quick"

	"steerq/internal/catalog"
	"steerq/internal/plan"
)

func TestChooseDOPBounds(t *testing.T) {
	f := func(rows, bytes float64) bool {
		if rows < 0 {
			rows = -rows
		}
		if bytes < 0 {
			bytes = -bytes
		}
		d := ChooseDOP(rows, bytes, 50)
		return d >= 1 && d <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseDOPMonotonic(t *testing.T) {
	if ChooseDOP(1e9, 100, 50) < ChooseDOP(1e6, 100, 50) {
		t.Fatal("DOP not monotone in data size")
	}
	if ChooseDOP(1, 1, 50) != 1 {
		t.Fatal("tiny input should get DOP 1")
	}
	if ChooseDOP(1e12, 1000, 50) != 50 {
		t.Fatal("huge input should hit the cap")
	}
}

func TestLoopJoinQuadratic(t *testing.T) {
	c := NewCoster()
	small := c.Cost(OpCostParams{Op: plan.PhysLoopJoin, ProbeRows: 1e6, BuildRows: 100, DOP: 10})
	big := c.Cost(OpCostParams{Op: plan.PhysLoopJoin, ProbeRows: 1e6, BuildRows: 1e5, DOP: 10})
	if big.LatencySeconds < 100*small.LatencySeconds {
		t.Fatalf("loop join not superlinear in build size: %v vs %v", small.LatencySeconds, big.LatencySeconds)
	}
}

func TestBroadcastScalesWithConsumers(t *testing.T) {
	c := NewCoster()
	p := OpCostParams{Op: plan.PhysExchange, Exchange: plan.ExchangeBroadcast, InRows: 1e6, InBytes: 1e8}
	p.DOP = 2
	low := c.Cost(p)
	p.DOP = 40
	high := c.Cost(p)
	if high.IOBytes <= low.IOBytes {
		t.Fatal("broadcast IO does not scale with consumer count")
	}
}

func TestGatherSerial(t *testing.T) {
	c := NewCoster()
	p := OpCostParams{Op: plan.PhysExchange, Exchange: plan.ExchangeGather, InRows: 1e7, InBytes: 1e9, DOP: 50}
	u := c.Cost(p)
	// A serial gather of 1e9 bytes at 100 MB/s takes ~10s regardless of DOP.
	if u.LatencySeconds < 5 {
		t.Fatalf("gather latency %v ignores its serial nature", u.LatencySeconds)
	}
}

func TestHigherDOPLowersLatency(t *testing.T) {
	c := NewCoster()
	p := OpCostParams{Op: plan.PhysFilter, InRows: 1e8}
	p.DOP = 1
	slow := c.Cost(p)
	p.DOP = 50
	fast := c.Cost(p)
	if fast.LatencySeconds >= slow.LatencySeconds {
		t.Fatalf("parallelism does not reduce latency: %v vs %v", slow.LatencySeconds, fast.LatencySeconds)
	}
	if fast.CPUSeconds != slow.CPUSeconds {
		t.Fatal("total CPU should be DOP-independent for filters")
	}
}

func TestUDOWeightsCPU(t *testing.T) {
	c := NewCoster()
	light := c.Cost(OpCostParams{Op: plan.PhysProcessImpl, InRows: 1e6, DOP: 4, UDO: &catalog.UDO{CPUPerRow: 1}})
	heavy := c.Cost(OpCostParams{Op: plan.PhysProcessImpl, InRows: 1e6, DOP: 4, UDO: &catalog.UDO{CPUPerRow: 8}})
	if heavy.CPUSeconds <= light.CPUSeconds {
		t.Fatal("UDO CPU weight ignored")
	}
}

func TestScanUsesInputBytes(t *testing.T) {
	c := NewCoster()
	u := c.Cost(OpCostParams{Op: plan.PhysRangeScan, InRows: 1e8, InBytes: 1e10, OutRows: 10, OutBytes: 1e3, DOP: 40})
	// A selective range scan still reads the full 10 GB.
	if u.IOBytes != 1e10 {
		t.Fatalf("scan IO %v, want full input", u.IOBytes)
	}
}

func TestVirtualDatasetCheaperThanMerge(t *testing.T) {
	c := NewCoster()
	p := OpCostParams{InRows: 1e7, InBytes: 1e9, OutRows: 1e7, OutBytes: 1e9, DOP: 20, Branches: 3}
	p.Op = plan.PhysUnionMerge
	merge := c.Cost(p)
	p.Op = plan.PhysVirtualDataset
	virtual := c.Cost(p)
	if virtual.LatencySeconds >= merge.LatencySeconds {
		t.Fatal("virtual dataset should be locally cheaper than a materializing union")
	}
}

func TestUsageAdd(t *testing.T) {
	var u OpUsage
	u.Add(OpUsage{CPUSeconds: 1, IOBytes: 2, LatencySeconds: 3})
	u.Add(OpUsage{CPUSeconds: 10, IOBytes: 20, LatencySeconds: 30})
	if u.CPUSeconds != 11 || u.IOBytes != 22 || u.LatencySeconds != 33 {
		t.Fatalf("Add wrong: %+v", u)
	}
}
