package cost

import (
	"math"

	"steerq/internal/catalog"
	"steerq/internal/plan"
)

// OpUsage is the resource usage of one physical operator instance.
//
// CPUSeconds and IOBytes are totals summed over all parallel vertices; they
// feed the CPU-time and I/O-time metrics of §3.1.2. LatencySeconds is the
// operator's critical-path contribution given its degree of parallelism and
// feeds the runtime metric.
type OpUsage struct {
	CPUSeconds     float64
	IOBytes        float64
	LatencySeconds float64
}

// Add accumulates o into u.
func (u *OpUsage) Add(o OpUsage) {
	u.CPUSeconds += o.CPUSeconds
	u.IOBytes += o.IOBytes
	u.LatencySeconds += o.LatencySeconds
}

// OpCostParams carries everything needed to cost one physical operator.
type OpCostParams struct {
	Op       plan.PhysOp
	Exchange plan.ExchangeKind

	// InRows/InBytes total over all inputs; OutRows/OutBytes of the output.
	InRows, InBytes   float64
	OutRows, OutBytes float64

	// BuildRows/ProbeRows for join operators.
	BuildRows, ProbeRows float64

	// DOP is the operator's degree of parallelism (>= 1).
	DOP int

	// UDO for Process/Reduce implementations.
	UDO *catalog.UDO

	// TopN for top operators; Branches for union operators.
	TopN     int
	Branches int
}

// Coster converts operator work into seconds of CPU, bytes of I/O and
// critical-path latency. The same Coster is used to produce the optimizer's
// estimated plan costs (fed with estimated Props) and the executor's true
// resource usage (fed with true Props), so estimation error comes only from
// cardinalities and DOP — mirroring SCOPE, where the cost formulas are "tuned
// over the years" (§3.1) but the inputs betray them.
type Coster struct {
	// Tunable rates. Zero values are replaced by defaults in New.
	RowsPerCPUSecond  float64 // relational work throughput per vertex
	BytesPerIOSecond  float64 // sequential I/O throughput per vertex
	VertexStartup     float64 // seconds of scheduling overhead per vertex wave
	ShuffleBytesCost  float64 // multiplier on shuffled bytes (write+read)
	BroadcastPenalty  float64 // per-consumer replication multiplier
	LoopJoinRowFactor float64 // cost per (probe row x build row) pair
}

// NewCoster returns a Coster with default rates.
func NewCoster() *Coster {
	return &Coster{
		RowsPerCPUSecond:  1e6,
		BytesPerIOSecond:  100e6,
		VertexStartup:     0.4,
		ShuffleBytesCost:  2.0,
		BroadcastPenalty:  1.0,
		LoopJoinRowFactor: 1.0 / 2e8,
	}
}

// cpuRows converts row-operations into CPU seconds.
func (c *Coster) cpuRows(rowOps float64) float64 { return rowOps / c.RowsPerCPUSecond }

// Cost returns the usage of one operator.
func (c *Coster) Cost(p OpCostParams) OpUsage {
	dop := float64(p.DOP)
	if dop < 1 {
		dop = 1
	}
	var cpu, io float64 // totals
	serial := false     // operator runs on a single vertex regardless of DOP

	switch p.Op {
	case plan.PhysExtract, plan.PhysRangeScan:
		// Scans read the whole stream (InBytes) regardless of how
		// selective an embedded range predicate is; only downstream
		// operators see the filtered OutRows.
		io = p.InBytes
		cpu = c.cpuRows(p.InRows*0.5 + p.OutRows*0.2)
	case plan.PhysFilter:
		cpu = c.cpuRows(p.InRows * 1.0)
	case plan.PhysCompute:
		cpu = c.cpuRows(p.InRows * 0.7)
	case plan.PhysHashJoin, plan.PhysHashJoinAlt:
		cpu = c.cpuRows(p.BuildRows*3.0 + p.ProbeRows*1.2 + p.OutRows*0.3)
	case plan.PhysMergeJoin:
		cpu = c.cpuRows(p.InRows*1.0 + p.OutRows*0.3)
	case plan.PhysLoopJoin:
		// Each probe partition scans its build copy per row: quadratic.
		pairs := p.ProbeRows * p.BuildRows
		cpu = c.cpuRows(p.ProbeRows+p.BuildRows) + pairs*c.LoopJoinRowFactor
	case plan.PhysHashAgg, plan.PhysFinalHashAgg:
		cpu = c.cpuRows(p.InRows * 2.2)
	case plan.PhysPartialHashAgg:
		cpu = c.cpuRows(p.InRows * 1.6)
	case plan.PhysStreamAgg:
		cpu = c.cpuRows(p.InRows * 0.8)
	case plan.PhysSort:
		n := math.Max(p.InRows, 2)
		cpu = c.cpuRows(p.InRows * math.Log2(n) * 0.25)
	case plan.PhysUnionMerge:
		cpu = c.cpuRows(p.InRows * 0.3)
		io = p.InBytes * 0.5
	case plan.PhysVirtualDataset:
		// Consumers read branch outputs in place: no movement, trivial CPU,
		// but downstream parallelism is pinned to the branch layout (the
		// executor models that through the DOP of this node).
		cpu = c.cpuRows(p.InRows * 0.02)
	case plan.PhysProcessImpl:
		w := 1.0
		if p.UDO != nil {
			w = p.UDO.CPUPerRow
		}
		cpu = c.cpuRows(p.InRows * w * 4.0)
	case plan.PhysReduceImpl:
		w := 1.0
		if p.UDO != nil {
			w = p.UDO.CPUPerRow
		}
		cpu = c.cpuRows(p.InRows * w * 5.0)
	case plan.PhysLocalTop:
		n := math.Max(float64(p.TopN), 2)
		cpu = c.cpuRows(p.InRows * math.Log2(n) * 0.2)
	case plan.PhysGlobalTop:
		cpu = c.cpuRows(p.InRows * 0.5)
		serial = true
	case plan.PhysExchange:
		switch p.Exchange {
		case plan.ExchangeShuffle:
			io = p.InBytes * c.ShuffleBytesCost
			cpu = c.cpuRows(p.InRows * 0.6)
		case plan.ExchangeBroadcast:
			io = p.InBytes * dop * c.BroadcastPenalty
			cpu = c.cpuRows(p.InRows * 0.3 * dop)
		case plan.ExchangeGather:
			io = p.InBytes
			cpu = c.cpuRows(p.InRows * 0.3)
			serial = true
		case plan.ExchangeInitial:
			// Initial partitioned layout: costless, the scan pays.
		}
	case plan.PhysOutputImpl:
		io = p.InBytes
		cpu = c.cpuRows(p.InRows * 0.3)
	case plan.PhysMultiImpl:
		// Virtual root.
	}

	u := OpUsage{CPUSeconds: cpu, IOBytes: io}
	par := dop
	if serial {
		par = 1
	}
	u.LatencySeconds = cpu/par + io/(c.BytesPerIOSecond*par)
	if cpu > 0 || io > 0 {
		u.LatencySeconds += c.VertexStartup * math.Sqrt(par) / 8
	}
	return u
}

// ChooseDOP is the optimizer's degree-of-parallelism heuristic: partitions
// sized to ~256 MB of data, clamped to [1, maxDOP]. Because it runs on
// *estimated* bytes, different rule configurations — which change estimates —
// select different degrees of parallelism for the same data (§5.3,
// "Degree of Parallelism").
func ChooseDOP(rows, rowBytes float64, maxDOP int) int {
	const partitionBytes = 256e6
	bytes := rows * math.Max(rowBytes, 1)
	d := int(math.Ceil(bytes / partitionBytes))
	if d < 1 {
		d = 1
	}
	if d > maxDOP {
		d = maxDOP
	}
	return d
}
