package cost

import (
	"hash/fnv"
	"math"
	"strings"

	"steerq/internal/catalog"
	"steerq/internal/plan"
)

// Estimator derives output statistics for operators under a Mode. A single
// Estimator is safe for concurrent use.
type Estimator struct {
	Cat  *catalog.Catalog
	Mode Mode
	// Day selects which day's true input sizes the true oracle sees; the
	// estimated mode ignores it (the optimizer's stats are stale).
	Day int
}

// NewEstimated returns the optimizer-facing estimator.
func NewEstimated(cat *catalog.Catalog) *Estimator {
	return &Estimator{Cat: cat, Mode: ModeEstimated}
}

// NewTrue returns the ground-truth oracle for the given day.
func NewTrue(cat *catalog.Catalog, day int) *Estimator {
	return &Estimator{Cat: cat, Mode: ModeTrue, Day: day}
}

// Scan returns the properties of reading a stream with the given output
// schema, applying an optional embedded scan predicate.
func (e *Estimator) Scan(table string, schema []plan.Column, pred *plan.Expr) Props {
	st := e.Cat.Stream(table)
	var rows, rowBytes float64 = 1000, 100
	if st != nil {
		rowBytes = st.BytesPerRow
		if e.Mode == ModeTrue {
			rows = st.TrueRows(e.Day)
		} else {
			rows = st.BaseRows
		}
	}
	ndv := make(map[plan.ColumnID]float64, len(schema))
	for _, c := range schema {
		d := rows
		if st != nil {
			if col := st.Column(colBase(c)); col != nil {
				if e.Mode == ModeTrue {
					d = col.TrueDistinct
				} else {
					d = col.Distinct
				}
			}
		}
		ndv[c.ID] = minf(d, rows)
	}
	p := Props{Rows: rows, RowBytes: rowBytes, NDV: ndv}
	if pred != nil {
		p = e.Filter(p, pred)
	}
	return p
}

// colBase returns the base column name from a lineage source "stream.col".
func colBase(c plan.Column) string {
	if i := strings.LastIndexByte(c.Source, '.'); i >= 0 {
		return c.Source[i+1:]
	}
	return c.Name
}

// colStream returns the base stream name from a lineage source, or "".
func colStream(c plan.Column) string {
	if i := strings.LastIndexByte(c.Source, '.'); i >= 0 {
		return c.Source[:i]
	}
	return ""
}

// Filter returns the properties after applying pred to input p. The output
// shares p's NDV map unless clamping to the reduced row count changes an
// entry (copy-on-write).
func (e *Estimator) Filter(p Props, pred *plan.Expr) Props {
	sel := e.Selectivity(pred, p)
	rows := maxf(1, p.Rows*sel)
	return Props{Rows: rows, RowBytes: p.RowBytes, NDV: clampedNDV(p.NDV, rows)}
}

// Selectivity returns the selectivity of pred against input p.
//
// In estimated mode, conjunctions use exponential backoff in the order the
// conjuncts appear: sel = s1 * s2^(1/2) * s3^(1/4) * ... — so rules that
// reorder or split predicates (SelectPredNormalized, CollapseSelects, filter
// pushdown) genuinely change the estimate, which is one of the mechanisms by
// which different rule configurations yield different estimated costs (§5.3,
// "changing node properties").
//
// In true mode, conjunctions multiply exactly and are corrected by the
// catalog's hidden cross-column correlation factors.
func (e *Estimator) Selectivity(pred *plan.Expr, p Props) float64 {
	if pred == nil {
		return 1
	}
	switch pred.Kind {
	case plan.ExprAnd:
		if e.Mode == ModeEstimated {
			sel := 1.0
			exp := 1.0
			for _, c := range pred.Args {
				sel *= math.Pow(e.Selectivity(c, p), exp)
				exp /= 2
			}
			return clampSel(sel)
		}
		sel := 1.0
		for _, c := range pred.Args {
			sel *= e.Selectivity(c, p)
		}
		return clampSel(sel * e.correlationBoost(pred.Args))
	case plan.ExprOr:
		// Disjunction via inclusion-exclusion under independence.
		notSel := 1.0
		for _, c := range pred.Args {
			notSel *= 1 - e.Selectivity(c, p)
		}
		return clampSel(1 - notSel)
	case plan.ExprCmp:
		return e.cmpSelectivity(pred, p)
	}
	return 1
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// correlationBoost returns the product of correlation factors for pairs of
// conjuncts over correlated columns of the same base stream. Only the true
// oracle calls it.
func (e *Estimator) correlationBoost(conjuncts []*plan.Expr) float64 {
	type ref struct {
		stream, col string
	}
	var refs []ref
	for _, c := range conjuncts {
		if col, ok := singleColumn(c); ok {
			if s := colStream(col); s != "" {
				refs = append(refs, ref{s, colBase(col)})
			}
		}
	}
	boost := 1.0
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if refs[i].stream != refs[j].stream {
				continue
			}
			st := e.Cat.Stream(refs[i].stream)
			if st == nil {
				continue
			}
			boost *= st.CorrelationFactor(refs[i].col, refs[j].col)
		}
	}
	return boost
}

// singleColumn returns the sole column referenced by a simple comparison
// col-op-const, if e has that shape.
func singleColumn(e *plan.Expr) (plan.Column, bool) {
	if e.Kind != plan.ExprCmp || len(e.Args) != 2 {
		return plan.Column{}, false
	}
	l, r := e.Args[0], e.Args[1]
	if l.Kind == plan.ExprColumn && r.Kind == plan.ExprConst {
		return l.Col, true
	}
	if r.Kind == plan.ExprColumn && l.Kind == plan.ExprConst {
		return r.Col, true
	}
	return plan.Column{}, false
}

func (e *Estimator) cmpSelectivity(pred *plan.Expr, p Props) float64 {
	l, r := pred.Args[0], pred.Args[1]
	// Normalize const-op-col to col-op'-const.
	op := pred.Op
	if l.Kind == plan.ExprConst && r.Kind == plan.ExprColumn {
		l, r = r, l
		op = flipCmp(op)
	}
	if l.Kind == plan.ExprColumn && r.Kind == plan.ExprConst {
		return e.colConstSelectivity(l.Col, op, r.Lit, p)
	}
	if l.Kind == plan.ExprColumn && r.Kind == plan.ExprColumn {
		// Column-column comparison outside join context.
		ndv := maxf(p.ColNDV(l.Col.ID), p.ColNDV(r.Col.ID))
		switch op {
		case plan.OpEQ:
			return clampSel(1 / maxf(1, ndv))
		case plan.OpNE:
			return clampSel(1 - 1/maxf(1, ndv))
		default:
			return 1.0 / 3
		}
	}
	// Arithmetic or opaque comparison: magic constant, as real engines use.
	return 1.0 / 3
}

func flipCmp(op plan.CmpOp) plan.CmpOp {
	switch op {
	case plan.OpLT:
		return plan.OpGT
	case plan.OpLE:
		return plan.OpGE
	case plan.OpGT:
		return plan.OpLT
	case plan.OpGE:
		return plan.OpLE
	}
	return op
}

func (e *Estimator) colConstSelectivity(col plan.Column, op plan.CmpOp, lit plan.Literal, p Props) float64 {
	st := e.Cat.Stream(colStream(col))
	var cc *catalog.Column
	if st != nil {
		cc = st.Column(colBase(col))
	}
	ndv := p.ColNDV(col.ID)
	switch op {
	case plan.OpEQ:
		if e.Mode == ModeTrue && cc != nil && cc.Skew > 0 {
			// True frequency of the matched value under the Zipf law:
			// the value's rank is derived deterministically from the
			// literal so recurring instances with different constants
			// hit different frequency ranks.
			return clampSel(zipfFreq(valueRank(lit, cc), cc.TrueDistinct, cc.Skew))
		}
		return clampSel(1 / maxf(1, ndv))
	case plan.OpNE:
		return clampSel(1 - 1/maxf(1, ndv))
	case plan.OpLT, plan.OpLE, plan.OpGT, plan.OpGE:
		if lit.IsString || cc == nil || cc.Max <= cc.Min {
			return 1.0 / 3
		}
		frac := (lit.F - cc.Min) / (cc.Max - cc.Min)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		if op == plan.OpGT || op == plan.OpGE {
			frac = 1 - frac
		}
		if e.Mode == ModeTrue && cc.Skew > 0 {
			// Skewed columns concentrate mass at low values; a range
			// predicate's true selectivity deviates from the uniform
			// fraction. Model with a power transform.
			frac = math.Pow(frac, 1/(1+cc.Skew))
		}
		return clampSel(frac)
	}
	return 1.0 / 3
}

// valueRank maps a literal deterministically to a frequency rank in
// [1, distinct].
func valueRank(lit plan.Literal, cc *catalog.Column) int {
	d := int(cc.TrueDistinct)
	if d < 1 {
		d = 1
	}
	if !lit.IsString && cc.Max > cc.Min {
		frac := (lit.F - cc.Min) / (cc.Max - cc.Min)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		r := int(frac*float64(d-1)) + 1
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(lit.String()))
	return int(h.Sum64()%uint64(d)) + 1
}

// zipfFreq returns the relative frequency of the value of rank r among d
// values under Zipf skew z.
func zipfFreq(r int, d, z float64) float64 {
	n := int(d)
	if n < 1 {
		n = 1
	}
	if n > 4096 {
		n = 4096
		r = r % n
		if r == 0 {
			r = n
		}
	}
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / math.Pow(float64(i), z)
	}
	return (1 / math.Pow(float64(r), z)) / h
}

// Join returns the properties of an inner join of l and r under pred.
// Equi-join cardinality uses the containment assumption |L||R|/max(ndv);
// the true oracle additionally multiplies the skew fan-out of the most
// skewed join key — the underestimate class that makes nested-loop-style
// plans disastrous (§1).
func (e *Estimator) Join(l, r Props, pred *plan.Expr) Props {
	out := Props{
		RowBytes: l.RowBytes + r.RowBytes,
		NDV:      make(map[plan.ColumnID]float64, len(l.NDV)+len(r.NDV)),
	}
	for k, v := range l.NDV {
		out.NDV[k] = v
	}
	for k, v := range r.NDV {
		out.NDV[k] = v
	}
	cross := l.Rows * r.Rows
	sel := 1.0
	applied := false
	for _, c := range plan.Conjuncts(pred) {
		if a, b, ok := c.EquiJoinSides(); ok {
			ndv := maxf(joinNDV(l, r, a), joinNDV(l, r, b))
			s := 1 / maxf(1, ndv)
			if e.Mode == ModeTrue {
				s *= e.keySkewFanout(a) * e.keySkewFanout(b)
			}
			if applied && e.Mode == ModeEstimated {
				s = math.Sqrt(s) // backoff on extra equi conjuncts
			}
			sel *= s
			applied = true
		} else {
			sel *= e.Selectivity(c, mergeProps(l, r))
		}
	}
	out.Rows = maxf(1, cross*clampSel(sel))
	clampNDV(out.NDV, out.Rows)
	return out
}

// joinNDV returns the NDV of a join key column from whichever side owns it.
func joinNDV(l, r Props, c plan.Column) float64 {
	if v, ok := l.NDV[c.ID]; ok {
		return v
	}
	if v, ok := r.NDV[c.ID]; ok {
		return v
	}
	return maxf(l.Rows, r.Rows)
}

// keySkewFanout returns the true fan-out multiplier for a skewed join key.
func (e *Estimator) keySkewFanout(c plan.Column) float64 {
	st := e.Cat.Stream(colStream(c))
	if st == nil {
		return 1
	}
	cc := st.Column(colBase(c))
	if cc == nil || cc.Skew <= 0 {
		return 1
	}
	f := catalog.SkewFanout(cc.TrueDistinct, cc.Skew)
	// Dampen: joins rarely realize the full theoretical fan-out.
	return 1 + (f-1)*0.5
}

func mergeProps(l, r Props) Props {
	m := Props{Rows: l.Rows * r.Rows, RowBytes: l.RowBytes + r.RowBytes, NDV: make(map[plan.ColumnID]float64, len(l.NDV)+len(r.NDV))}
	for k, v := range l.NDV {
		m.NDV[k] = v
	}
	for k, v := range r.NDV {
		m.NDV[k] = v
	}
	return m
}

// GroupBy returns the properties of grouping in by keys with the given
// aggregates.
func (e *Estimator) GroupBy(in Props, keys []plan.Column, aggs []plan.Agg) Props {
	groups := 1.0
	for _, k := range keys {
		groups *= in.ColNDV(k.ID)
	}
	// Grouped output cannot exceed input; multi-key NDV products
	// overestimate heavily, so apply the classic sqrt damping per extra
	// key in estimated mode.
	if e.Mode == ModeEstimated && len(keys) > 1 {
		first := in.ColNDV(keys[0].ID)
		groups = first
		for _, k := range keys[1:] {
			groups *= math.Sqrt(in.ColNDV(k.ID))
		}
	}
	groups = minf(groups, in.Rows)
	if len(keys) == 0 {
		groups = 1
	}
	out := Props{Rows: maxf(1, groups), RowBytes: float64(8 * (len(keys) + len(aggs)))}
	out.NDV = make(map[plan.ColumnID]float64, len(keys)+len(aggs))
	for _, k := range keys {
		out.NDV[k.ID] = minf(in.ColNDV(k.ID), out.Rows)
	}
	for _, a := range aggs {
		out.NDV[a.Out.ID] = out.Rows
	}
	return out
}

// UnionAll returns the properties of an n-ary union. Child column NDVs are
// mapped positionally onto the output schema (taken from the first child).
func (e *Estimator) UnionAll(children []Props, childSchemas [][]plan.Column, outSchema []plan.Column) Props {
	out := Props{NDV: make(map[plan.ColumnID]float64, len(outSchema))}
	for _, c := range children {
		out.Rows += c.Rows
		if c.RowBytes > out.RowBytes {
			out.RowBytes = c.RowBytes
		}
	}
	for pos, oc := range outSchema {
		var sum float64
		for ci, c := range children {
			if pos < len(childSchemas[ci]) {
				sum += c.ColNDV(childSchemas[ci][pos].ID)
			}
		}
		out.NDV[oc.ID] = minf(sum, out.Rows)
	}
	out.Rows = maxf(1, out.Rows)
	return out
}

// Process returns the properties after a user-defined row processor.
func (e *Estimator) Process(in Props, udoName string) Props {
	factor := 1.0
	cpw := 1.0
	if u := e.Cat.UDO(udoName); u != nil {
		if e.Mode == ModeTrue {
			factor = u.TrueFactor
		} else {
			factor = u.EstFactor
		}
		cpw = u.CPUPerRow
	}
	_ = cpw
	out := in
	out.Rows = maxf(1, in.Rows*factor)
	out.NDV = clampedNDV(in.NDV, out.Rows)
	return out
}

// Reduce returns the properties after a user-defined per-key reducer.
func (e *Estimator) Reduce(in Props, keys []plan.Column, udoName string) Props {
	// A reducer emits roughly factor rows per key group.
	groups := 1.0
	for _, k := range keys {
		groups *= in.ColNDV(k.ID)
	}
	groups = minf(maxf(1, groups), in.Rows)
	factor := 1.0
	if u := e.Cat.UDO(udoName); u != nil {
		if e.Mode == ModeTrue {
			factor = u.TrueFactor
		} else {
			factor = u.EstFactor
		}
	}
	out := in
	out.Rows = maxf(1, groups*factor)
	out.NDV = clampedNDV(in.NDV, out.Rows)
	return out
}

// Top returns the properties of a top-N.
func (e *Estimator) Top(in Props, n int) Props {
	out := in
	out.Rows = minf(in.Rows, float64(n))
	if out.Rows < 1 {
		out.Rows = 1
	}
	out.NDV = clampedNDV(in.NDV, out.Rows)
	return out
}

// Project returns the properties of a projection: pass-through columns keep
// their NDV, computed columns default to row count.
func (e *Estimator) Project(in Props, projs []plan.Projection) Props {
	out := Props{Rows: in.Rows, RowBytes: maxf(8, float64(12*len(projs))), NDV: make(map[plan.ColumnID]float64, len(projs))}
	for _, p := range projs {
		if p.Expr.Kind == plan.ExprColumn {
			out.NDV[p.Out.ID] = in.ColNDV(p.Expr.Col.ID)
		} else {
			out.NDV[p.Out.ID] = in.Rows
		}
	}
	return out
}
