package loadgen

import "testing"

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 100 observations: 1..100 µs. p50 rank 50 → 50µs sits in the (20µs,
	// 50µs] bucket; p99 rank 99 → (50µs, 100µs]; p100 → same bucket bound.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 50_000 {
		t.Fatalf("p50 %d", got)
	}
	if got := h.Quantile(0.95); got != 100_000 {
		t.Fatalf("p95 %d", got)
	}
	if got := h.Quantile(1); got != 100_000 {
		t.Fatalf("p100 %d", got)
	}
	if h.MaxNS() != 100_000 {
		t.Fatalf("max %d", h.MaxNS())
	}
	if h.MeanNS() != 50_500 {
		t.Fatalf("mean %d", h.MeanNS())
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.MaxNS() != 0 || h.MeanNS() != 0 {
		t.Fatal("empty histogram not all-zero")
	}

	// All-zero latencies (the frozen-clock case) quantile to 0, not to the
	// first bucket bound.
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	if h.Count() != 2 || h.Quantile(0.99) != 0 {
		t.Fatalf("zero-latency histogram: count %d p99 %d", h.Count(), h.Quantile(0.99))
	}

	// An overflow observation reports the exact max at high quantiles.
	var o Hist
	o.Observe(7_000_000_000)
	if got := o.Quantile(0.999); got != 7_000_000_000 {
		t.Fatalf("overflow quantile %d", got)
	}
	if got := o.Quantile(0); got != 7_000_000_000 {
		t.Fatalf("q=0 clamps to rank 1, got %d", got)
	}
}

func TestHistMergeCommutes(t *testing.T) {
	var all, a, b, ab, ba Hist
	for i := 0; i < 500; i++ {
		ns := int64(i*i) * 37
		all.Observe(ns)
		if i%2 == 0 {
			a.Observe(ns)
		} else {
			b.Observe(ns)
		}
	}
	ab.Merge(&a)
	ab.Merge(&b)
	ba.Merge(&b)
	ba.Merge(&a)
	for _, m := range []*Hist{&ab, &ba} {
		if *m != all {
			t.Fatal("merged histogram differs from direct observation")
		}
	}
}
