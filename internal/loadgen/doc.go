// Package loadgen is the deterministic open-loop load generator for the
// serving path. It drives either the in-process serve.SDK or a live steerqd
// daemon (via HTTP) with a seeded arrival schedule and reports latency
// percentiles, achieved-vs-offered QPS and the hit/fallback/default mix.
//
// The determinism contract mirrors the rest of the module: the arrival
// schedule is materialized up front as a pure function of (seed, profile,
// mix) — target QPS, Zipf-skewed signature popularity, diurnal ramps and
// flash-crowd bursts sampled by Poisson thinning on a virtual timeline —
// and per-worker results are exact integers merged in worker order, so the
// same seed yields a byte-identical report at any worker count under a
// frozen clock (STEERQ_VCLOCK=1).
//
// In paced (real-time) mode latency is measured from each arrival's
// *intended* instant, not its actual send, so queueing behind a slow
// predecessor is charged to the percentiles rather than silently omitted —
// the standard coordinated-omission correction for open-loop harnesses.
package loadgen
