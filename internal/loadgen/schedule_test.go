package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"steerq/internal/bitvec"
)

func flatProfile(qps float64, d time.Duration) Profile {
	return Profile{QPS: qps, Duration: d}
}

// TestBuildSameSeedSameSchedule is the schedule half of the metamorphic
// battery: the arrival timeline is a pure function of (seed, profile, mix).
func TestBuildSameSeedSameSchedule(t *testing.T) {
	b := testBundle(t, 1, 40)
	mix := testMix(b, 1.1, 0.1, 8)
	p := Profile{QPS: 400, Duration: 5 * time.Second, DiurnalAmp: 0.5,
		Bursts: []Burst{{Start: time.Second, Dur: time.Second, Factor: 3}}}

	s1, err := Build(42, p, mix)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(42, p, mix)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different schedules")
	}
	if len(s1.Arrivals) == 0 {
		t.Fatal("empty schedule")
	}
	s3, err := Build(43, p, mix)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.Arrivals, s3.Arrivals) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i := 1; i < len(s1.Arrivals); i++ {
		if s1.Arrivals[i].At < s1.Arrivals[i-1].At {
			t.Fatal("arrival times not monotone")
		}
	}
}

// TestProfileRateIntegrates checks the normalization promise: whatever the
// shape, the instantaneous rate integrates to QPS·Duration.
func TestProfileRateIntegrates(t *testing.T) {
	profiles := map[string]Profile{
		"flat":    flatProfile(500, 10*time.Second),
		"diurnal": {QPS: 500, Duration: 10 * time.Second, DiurnalAmp: 0.8},
		"burst": {QPS: 500, Duration: 10 * time.Second,
			Bursts: []Burst{{Start: 2 * time.Second, Dur: time.Second, Factor: 5}}},
		"composed": {QPS: 500, Duration: 10 * time.Second, DiurnalAmp: 0.4,
			Bursts: []Burst{
				{Start: time.Second, Dur: time.Second, Factor: 4},
				{Start: 6 * time.Second, Dur: 2 * time.Second, Factor: 0.25},
			}},
	}
	for name, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		const steps = 5_000
		day := p.Duration.Seconds()
		dt := day / steps
		var got, maxRate float64
		for i := 0; i < steps; i++ {
			r := p.Rate((float64(i) + 0.5) * dt)
			got += r * dt
			if r > maxRate {
				maxRate = r
			}
		}
		want := p.QPS * day
		if rel := math.Abs(got-want) / want; rel > 0.005 {
			t.Fatalf("%s: ∫rate = %.1f, want %.1f (rel err %.4f)", name, got, want, rel)
		}
		if bound := p.MaxRate(); maxRate > bound*(1+1e-9) {
			t.Fatalf("%s: observed rate %.1f exceeds analytic bound %.1f", name, maxRate, bound)
		}
	}
}

// TestScheduleOfferedLoad checks the sampled totals: each shape's arrival
// count lands near QPS·Duration, and a burst window really is denser.
func TestScheduleOfferedLoad(t *testing.T) {
	b := testBundle(t, 1, 20)
	mix := testMix(b, 0, 0, 0)
	const qps, daySec = 400.0, 10.0
	day := 10 * time.Second
	burst := Burst{Start: 4 * time.Second, Dur: time.Second, Factor: 6}

	for name, p := range map[string]Profile{
		"flat":    flatProfile(qps, day),
		"diurnal": {QPS: qps, Duration: day, DiurnalAmp: 0.7},
		"burst":   {QPS: qps, Duration: day, Bursts: []Burst{burst}},
	} {
		s, err := Build(7, p, mix)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := qps * daySec
		got := float64(len(s.Arrivals))
		// Poisson sd is √4000 ≈ 63; 10% ≈ 6σ.
		if math.Abs(got-want)/want > 0.10 {
			t.Fatalf("%s: %d arrivals, want ≈ %.0f", name, len(s.Arrivals), want)
		}
		if q := s.OfferedQPS(); math.Abs(q-got/daySec) > 1e-9 {
			t.Fatalf("%s: OfferedQPS %.3f, want %.3f", name, q, got/daySec)
		}
	}

	s, err := Build(7, Profile{QPS: qps, Duration: day, Bursts: []Burst{burst}}, mix)
	if err != nil {
		t.Fatal(err)
	}
	inWindow := func(lo, hi time.Duration) int {
		n := 0
		for _, a := range s.Arrivals {
			if a.At >= lo && a.At < hi {
				n++
			}
		}
		return n
	}
	dense := inWindow(burst.Start, burst.Start+burst.Dur)
	quiet := inWindow(8*time.Second, 9*time.Second)
	if dense < 3*quiet {
		t.Fatalf("burst window not denser: %d in burst vs %d in quiet second", dense, quiet)
	}
}

// TestScheduleZipfSkew checks popularity skew flows through to the drawn
// signatures: the rank-1 signature dominates under a skewed mix and does not
// under a uniform one.
func TestScheduleZipfSkew(t *testing.T) {
	b := testBundle(t, 1, 50)
	p := flatProfile(2000, 5*time.Second)

	counts := func(mix Mix) map[bitvec.Key]int {
		t.Helper()
		s, err := Build(3, p, mix)
		if err != nil {
			t.Fatal(err)
		}
		c := make(map[bitvec.Key]int)
		for _, a := range s.Arrivals {
			c[a.Sig.Key()]++
		}
		return c
	}

	zipf := counts(testMix(b, 1.5, 0, 0))
	uniform := counts(testMix(b, 0, 0, 0))

	rank1 := b.Entries[0].Signature.Key()
	rankLast := b.Entries[len(b.Entries)-1].Signature.Key()
	if zipf[rank1] < 5*zipf[rankLast] {
		t.Fatalf("zipf mix not skewed: rank1 %d, rankLast %d", zipf[rank1], zipf[rankLast])
	}
	if uniform[rank1] > 3*uniform[rankLast] {
		t.Fatalf("uniform mix skewed: rank1 %d, rankLast %d", uniform[rank1], uniform[rankLast])
	}
}

// TestMissSignatures pins the miss generator: deterministic, disjoint from
// the known set, and mutually distinct.
func TestMissSignatures(t *testing.T) {
	b := testBundle(t, 1, 30)
	known := make([]bitvec.Vector, len(b.Entries))
	for i, e := range b.Entries {
		known[i] = e.Signature
	}
	m1 := MissSignatures(5, 12, known)
	m2 := MissSignatures(5, 12, known)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("miss signatures not deterministic")
	}
	if len(m1) != 12 {
		t.Fatalf("got %d miss signatures, want 12", len(m1))
	}
	taken := make(map[bitvec.Key]bool)
	for _, v := range known {
		taken[v.Key()] = true
	}
	for i, v := range m1 {
		if taken[v.Key()] {
			t.Fatalf("miss signature %d collides", i)
		}
		taken[v.Key()] = true
	}
}

func TestProfileValidate(t *testing.T) {
	day := 10 * time.Second
	bad := []Profile{
		{QPS: 0, Duration: day},
		{QPS: -5, Duration: day},
		{QPS: 100, Duration: 0},
		{QPS: 100, Duration: day, DiurnalAmp: 1},
		{QPS: 100, Duration: day, DiurnalAmp: -0.1},
		{QPS: 100, Duration: day, Bursts: []Burst{{Start: 0, Dur: time.Second, Factor: 0}}},
		{QPS: 100, Duration: day, Bursts: []Burst{{Start: 9 * time.Second, Dur: 2 * time.Second, Factor: 2}}},
		{QPS: 100, Duration: day, Bursts: []Burst{{Start: -time.Second, Dur: 2 * time.Second, Factor: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %d validated", i)
		}
		if _, err := Build(1, p, testMix(testBundle(t, 1, 3), 0, 0, 0)); err == nil {
			t.Fatalf("Build accepted bad profile %d", i)
		}
	}
}

func TestMixValidate(t *testing.T) {
	sig := []bitvec.Vector{bitvec.New(1)}
	bad := []Mix{
		{},
		{Signatures: sig, Weights: []float64{1, 2}},
		{Signatures: sig, Weights: []float64{-1}},
		{Signatures: sig, Weights: []float64{0}},
		{Signatures: sig, MissFrac: -0.1},
		{Signatures: sig, MissFrac: 1.1},
		{Signatures: sig, MissFrac: 0.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("mix %d validated", i)
		}
		if _, err := Build(1, flatProfile(10, time.Second), m); err == nil {
			t.Fatalf("Build accepted bad mix %d", i)
		}
	}
	good := Mix{Signatures: sig, Weights: []float64{2}, MissFrac: 0.2, Miss: []bitvec.Vector{bitvec.New(2)}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
