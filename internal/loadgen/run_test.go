package loadgen

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
	"steerq/internal/serve"
)

// frozenOpts are the virtual-timeline run options: frozen clock, no pacing.
func frozenOpts(workers int) Options {
	return Options{Workers: workers, Clock: obs.FrozenClock()}
}

// TestRunWorkerCountInvariance is the core metamorphic property: under a
// frozen clock the merged result is identical at any worker count — counts,
// per-signature mixes, histogram, QPS, everything except the recorded
// worker count itself.
func TestRunWorkerCountInvariance(t *testing.T) {
	b := testBundle(t, 1, 60)
	sdk := testSDK(t, b)
	s, err := Build(11, Profile{QPS: 800, Duration: 2 * time.Second, DiurnalAmp: 0.5}, testMix(b, 1.1, 0.1, 10))
	if err != nil {
		t.Fatal(err)
	}

	base := Run(s, SDKTarget{SDK: sdk}, frozenOpts(1))
	if base.Completed == 0 || base.Completed != int64(base.Arrivals) {
		t.Fatalf("baseline run: completed %d of %d", base.Completed, base.Arrivals)
	}
	if !base.Virtual {
		t.Fatal("frozen-clock run not flagged virtual")
	}
	for _, w := range []int{2, 4, 8} {
		got := Run(s, SDKTarget{SDK: sdk}, frozenOpts(w))
		if got.Workers != w {
			t.Fatalf("workers %d recorded as %d", w, got.Workers)
		}
		got.Workers = base.Workers
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("result at %d workers differs from 1 worker:\n1: %+v\n%d: %+v", w, base, w, got)
		}
	}
}

// TestRunMixAndQPS checks the aggregate accounting: decisions partition the
// completions, the per-signature mix sums back to the totals, and in
// virtual mode achieved equals offered exactly.
func TestRunMixAndQPS(t *testing.T) {
	b := testBundle(t, 1, 30)
	sdk := testSDK(t, b)
	s, err := Build(5, flatProfile(1000, time.Second), testMix(b, 1.2, 0.2, 6))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewWithClock(obs.FrozenClock())
	opts := frozenOpts(4)
	opts.Reg = reg
	res := Run(s, SDKTarget{SDK: sdk}, opts)

	if res.Errors != 0 {
		t.Fatalf("errors %d", res.Errors)
	}
	if res.Hits+res.Fallbacks+res.Defaults != res.Completed {
		t.Fatalf("mix %d+%d+%d != completed %d", res.Hits, res.Fallbacks, res.Defaults, res.Completed)
	}
	if res.Hits == 0 || res.Fallbacks == 0 || res.Defaults == 0 {
		t.Fatalf("degenerate mix: %d/%d/%d", res.Hits, res.Fallbacks, res.Defaults)
	}
	var h, f, d int64
	for _, sc := range res.PerSig {
		h += sc.Hits
		f += sc.Fallbacks
		d += sc.Defaults
	}
	if h != res.Hits || f != res.Fallbacks || d != res.Defaults {
		t.Fatalf("per-sig sums %d/%d/%d != totals %d/%d/%d", h, f, d, res.Hits, res.Fallbacks, res.Defaults)
	}
	if res.Elapsed != s.Profile.Duration {
		t.Fatalf("virtual elapsed %v, want %v", res.Elapsed, s.Profile.Duration)
	}
	if res.AchievedQPS != res.OfferedQPS {
		t.Fatalf("virtual achieved %.3f != offered %.3f", res.AchievedQPS, res.OfferedQPS)
	}
	if got := reg.Counter(loadRequestsMetric, "outcome", "hit").Value(); got != uint64(res.Hits) {
		t.Fatalf("hit counter %d, want %d", got, res.Hits)
	}
}

// slowTarget answers after advancing a manual clock by svc — a server with a
// fixed 50ms service time, simulated.
type slowTarget struct {
	mc  *obs.ManualClock
	svc time.Duration
}

func (s slowTarget) Steer(bitvec.Vector) (serve.Decision, error) {
	s.mc.Advance(s.svc)
	return serve.Decision{Version: 1, Kind: serve.KindHit}, nil
}

// TestCoordinatedOmission replays a schedule whose arrivals outpace a slow
// server, paced on a manual clock. With latency measured from the intended
// arrival, queueing delay accumulates into the histogram; measured from the
// send instant it would sit flat at the service time — the classic
// coordinated-omission understatement. The exact expected values come from
// replaying the single-server queue model on the schedule.
func TestCoordinatedOmission(t *testing.T) {
	b := testBundle(t, 1, 4)
	s, err := Build(2, flatProfile(100, time.Second), testMix(b, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	const svc = 50 * time.Millisecond

	// Paced, one worker: the run must charge each request its queueing
	// delay. Replay the model: the clock only moves via pacing sleeps and
	// the 50ms service times.
	mc := obs.NewManualClock()
	opts := Options{
		Workers: 1,
		Paced:   true,
		Clock:   mc.Now,
		Sleep:   mc.Advance,
	}
	res := Run(s, slowTarget{mc: mc, svc: svc}, opts)

	var wantHist Hist
	now := time.Duration(0)
	var wantElapsed time.Duration
	for _, a := range s.Arrivals {
		if a.At > now {
			now = a.At
		}
		now += svc
		wantHist.Observe(int64(now - a.At))
		wantElapsed = now
	}
	if res.Hist.MaxNS() != wantHist.MaxNS() || res.Hist.MeanNS() != wantHist.MeanNS() {
		t.Fatalf("paced histogram max/mean %d/%d, want %d/%d",
			res.Hist.MaxNS(), res.Hist.MeanNS(), wantHist.MaxNS(), wantHist.MeanNS())
	}
	if *res.Hist != wantHist {
		t.Fatal("paced histogram differs from queue-model replay")
	}
	if res.Elapsed != wantElapsed {
		t.Fatalf("elapsed %v, want %v", res.Elapsed, wantElapsed)
	}
	if res.Hist.MaxNS() <= int64(svc) {
		t.Fatal("pacing did not surface queueing delay")
	}

	// Unpaced, same slow server: every latency is exactly the service time.
	// The gap between the two runs is precisely what coordinated-omission
	// accounting exists to report.
	mc2 := obs.NewManualClock()
	res2 := Run(s, slowTarget{mc: mc2, svc: svc}, Options{Workers: 1, Clock: mc2.Now})
	if res2.Hist.MaxNS() != int64(svc) || res2.Hist.MeanNS() != int64(svc) {
		t.Fatalf("unpaced max/mean %d/%d, want %d", res2.Hist.MaxNS(), res2.Hist.MeanNS(), int64(svc))
	}
}

// TestRunErrorTarget counts a target that always fails as errors, not
// completions, and zero achieved QPS.
func TestRunErrorTarget(t *testing.T) {
	b := testBundle(t, 1, 5)
	s, err := Build(3, flatProfile(200, time.Second), testMix(b, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	tgt := targetFunc(func(bitvec.Vector) (serve.Decision, error) {
		return serve.Decision{}, errors.New("down")
	})
	res := Run(s, tgt, frozenOpts(2))
	if res.Completed != 0 || res.Errors != int64(res.Arrivals) {
		t.Fatalf("completed %d errors %d of %d", res.Completed, res.Errors, res.Arrivals)
	}
	if res.AchievedQPS != 0 || len(res.PerSig) != 0 {
		t.Fatalf("error run achieved %.1f qps, %d per-sig entries", res.AchievedQPS, len(res.PerSig))
	}
}

// targetFunc adapts a function to the Target interface.
type targetFunc func(sig bitvec.Vector) (serve.Decision, error)

func (f targetFunc) Steer(sig bitvec.Vector) (serve.Decision, error) { return f(sig) }

// TestRunCtxCancel: a canceled context stops workers before they pick up
// arrivals; nothing is counted.
func TestRunCtxCancel(t *testing.T) {
	b := testBundle(t, 1, 5)
	sdk := testSDK(t, b)
	s, err := Build(3, flatProfile(100, time.Second), testMix(b, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCtx(ctx, s, SDKTarget{SDK: sdk}, frozenOpts(3))
	if res.Completed != 0 || res.Errors != 0 {
		t.Fatalf("canceled run completed %d, errors %d", res.Completed, res.Errors)
	}
}

// TestObserveSeesEveryArrival: the observe hook fires once per arrival with
// its schedule index.
func TestObserveSeesEveryArrival(t *testing.T) {
	b := testBundle(t, 1, 8)
	sdk := testSDK(t, b)
	s, err := Build(4, flatProfile(300, time.Second), testMix(b, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []int
	opts := frozenOpts(4)
	opts.Observe = func(i int, a Arrival, d serve.Decision, err error) {
		if err != nil || d.Version != 1 {
			t.Errorf("arrival %d: decision %+v err %v", i, d, err)
		}
		mu.Lock()
		seen = append(seen, i)
		mu.Unlock()
	}
	res := Run(s, SDKTarget{SDK: sdk}, opts)
	sort.Ints(seen)
	if len(seen) != res.Arrivals {
		t.Fatalf("observed %d of %d arrivals", len(seen), res.Arrivals)
	}
	for i, v := range seen {
		if i != v {
			t.Fatalf("observe indices not a permutation of the schedule: %d at %d", v, i)
		}
	}
}
