package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"

	"steerq/internal/bitvec"
	"steerq/internal/serve"
)

// Target is what the load generator drives: one steering decision per
// request. Implementations must be safe for concurrent use — workers call
// Steer in parallel.
type Target interface {
	Steer(sig bitvec.Vector) (serve.Decision, error)
}

// StatusError is a non-200 answer from an HTTP target — the server spoke,
// it just refused. Distinct from transport errors (connection refused,
// reset), which surface as the underlying error type; the mid-drain battery
// relies on telling the two apart.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("loadgen: target returned %d: %s", e.Code, e.Msg)
}

// SDKTarget drives the in-process serving surface.
type SDKTarget struct {
	SDK *serve.SDK
}

// Steer resolves sig against the SDK's active table.
func (t SDKTarget) Steer(sig bitvec.Vector) (serve.Decision, error) {
	d, ok := t.SDK.Lookup(sig)
	if !ok {
		return serve.Decision{}, &StatusError{Code: http.StatusServiceUnavailable, Msg: "no bundle loaded"}
	}
	return d, nil
}

// HTTPTarget drives a live daemon over its steer endpoint.
type HTTPTarget struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:7311".
	Base string
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
}

// Steer queries GET /v1/steer and decodes the answer back into the same
// Decision an SDK lookup yields, so both targets are interchangeable to the
// runner and directly comparable in equivalence tests.
func (t HTTPTarget) Steer(sig bitvec.Vector) (serve.Decision, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(t.Base + serve.PathSteer + "?sig=" + sig.Hex())
	if err != nil {
		return serve.Decision{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return serve.Decision{}, &StatusError{Code: resp.StatusCode, Msg: er.Error}
	}
	var sr serve.SteerResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return serve.Decision{}, fmt.Errorf("loadgen: decode steer response: %w", err)
	}
	kind, ok := serve.ParseKind(sr.Kind)
	if !ok {
		return serve.Decision{}, fmt.Errorf("loadgen: unknown decision kind %q", sr.Kind)
	}
	cfg, err := bitvec.ParseHex(sr.Config)
	if err != nil {
		return serve.Decision{}, fmt.Errorf("loadgen: bad config in steer response: %w", err)
	}
	return serve.Decision{Config: cfg, Version: sr.Version, Kind: kind}, nil
}
