package loadgen

import (
	"context"
	"sync"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
	"steerq/internal/serve"
)

// Load-generator metric names. Outcome labels are the decision kinds plus
// "error" — a closed set.
const (
	loadRequestsMetric = "steerq_load_requests_total"
	loadLatencyMetric  = "steerq_load_latency_seconds"
)

// loadLatencyBounds bracket the serving path end to end: in-process lookups
// in the microseconds, loopback HTTP in the hundreds of microseconds.
var loadLatencyBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// Options configure a load run.
type Options struct {
	// Workers is the driving goroutine count (min 1). Arrivals are assigned
	// by stride (worker w takes arrivals w, w+W, ...), so the assignment is
	// a pure function of the schedule and W — never of scheduling order.
	Workers int
	// Paced replays the schedule in real time: each worker sleeps until an
	// arrival's intended instant and measures latency *from that instant*,
	// so queueing delay behind a slow previous request is charged to the
	// report instead of silently omitted (coordinated omission). Unpaced
	// runs issue back to back — the saturation mode the scaling sweep uses —
	// and measure latency from the actual send.
	Paced bool
	// Clock times the run (nil = obs.ClockFromEnv). Under a frozen clock
	// every latency is zero and elapsed time is the schedule's configured
	// duration, which is what makes pinned-seed reports byte-identical.
	Clock obs.Clock
	// Sleep is the pacing primitive (nil = time.Sleep). Tests inject one
	// that advances a manual clock instead of blocking.
	Sleep func(time.Duration)
	// Reg records load metrics (nil = uninstrumented).
	Reg *obs.Registry
	// Observe, when non-nil, sees every completion: the arrival index, the
	// arrival, and the decision or error. Called concurrently from worker
	// goroutines; the oracle-checking tests are the intended consumer.
	Observe func(i int, a Arrival, d serve.Decision, err error)
}

// SigCounts is one signature's decision mix.
type SigCounts struct {
	Hits, Fallbacks, Defaults int64
}

// Result is one load run's outcome. All counts are exact integers merged
// from per-worker state in worker order; under a frozen clock the whole
// struct is a pure function of (schedule, workers ⇒ nothing, target
// behavior), which the worker-count metamorphic test pins down.
type Result struct {
	Workers   int
	Arrivals  int
	Completed int64
	Errors    int64

	Hits, Fallbacks, Defaults int64

	// PerSig is the per-signature decision mix over completed requests —
	// the cross-target equivalence oracle.
	PerSig map[bitvec.Key]*SigCounts

	Hist *Hist

	// Elapsed is the run's wall duration; under a frozen clock it is the
	// schedule's configured duration instead, and Virtual is true.
	Elapsed time.Duration
	Virtual bool

	OfferedQPS  float64
	AchievedQPS float64
}

// workerState is one worker's private tallies, merged after the join.
type workerState struct {
	completed, errors         int64
	hits, fallbacks, defaults int64
	perSig                    map[bitvec.Key]*SigCounts
	hist                      Hist
}

// Run executes the schedule against the target and reports the merged
// result. It wraps RunCtx with a background context.
func Run(s *Schedule, tgt Target, opts Options) *Result {
	return RunCtx(context.Background(), s, tgt, opts)
}

// RunCtx is Run with cancellation: workers stop picking up arrivals once
// ctx is done (requests already in flight complete). A canceled run's
// remaining arrivals count neither as completed nor as errors.
func RunCtx(ctx context.Context, s *Schedule, tgt Target, opts Options) *Result {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	clock := opts.Clock
	if clock == nil {
		clock = obs.ClockFromEnv()
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	reqHit := opts.Reg.Counter(loadRequestsMetric, "outcome", "hit")
	reqFallback := opts.Reg.Counter(loadRequestsMetric, "outcome", "fallback")
	reqDefault := opts.Reg.Counter(loadRequestsMetric, "outcome", "default")
	reqError := opts.Reg.Counter(loadRequestsMetric, "outcome", "error")
	latency := opts.Reg.Histogram(loadLatencyMetric, loadLatencyBounds)

	states := make([]*workerState, workers)
	start := clock()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		st := &workerState{perSig: make(map[bitvec.Key]*SigCounts)}
		states[w] = st
		wg.Add(1)
		go func(w int, st *workerState) {
			defer wg.Done()
			for i := w; i < len(s.Arrivals); i += workers {
				select {
				case <-ctx.Done():
					return
				default:
				}
				a := s.Arrivals[i]
				intended := start.Add(a.At)
				if opts.Paced {
					if wait := intended.Sub(clock()); wait > 0 {
						sleep(wait)
					}
				}
				sent := clock()
				d, err := tgt.Steer(a.Sig)
				done := clock()
				base := sent
				if opts.Paced {
					base = intended
				}
				lat := done.Sub(base)
				if lat < 0 {
					lat = 0
				}
				st.hist.Observe(int64(lat))
				latency.Observe(lat.Seconds())
				if opts.Observe != nil {
					opts.Observe(i, a, d, err)
				}
				if err != nil {
					st.errors++
					reqError.Inc()
					continue
				}
				st.completed++
				sc := st.perSig[a.Sig.Key()]
				if sc == nil {
					sc = &SigCounts{}
					st.perSig[a.Sig.Key()] = sc
				}
				switch d.Kind {
				case serve.KindHit:
					st.hits++
					sc.Hits++
					reqHit.Inc()
				case serve.KindFallback:
					st.fallbacks++
					sc.Fallbacks++
					reqFallback.Inc()
				case serve.KindDefault:
					st.defaults++
					sc.Defaults++
					reqDefault.Inc()
				}
			}
		}(w, st)
	}
	wg.Wait()
	end := clock()

	// Merge per-worker state serially in worker index order. Every field is
	// an integer sum (or integer histogram), so the merged result is
	// independent of how the workers interleaved — and of the worker count
	// itself, since the union of strides is always the full schedule.
	res := &Result{
		Workers:  workers,
		Arrivals: len(s.Arrivals),
		PerSig:   make(map[bitvec.Key]*SigCounts),
		Hist:     &Hist{},
	}
	for _, st := range states {
		res.Completed += st.completed
		res.Errors += st.errors
		res.Hits += st.hits
		res.Fallbacks += st.fallbacks
		res.Defaults += st.defaults
		res.Hist.Merge(&st.hist)
		for k, sc := range st.perSig {
			dst := res.PerSig[k]
			if dst == nil {
				dst = &SigCounts{}
				res.PerSig[k] = dst
			}
			dst.Hits += sc.Hits
			dst.Fallbacks += sc.Fallbacks
			dst.Defaults += sc.Defaults
		}
	}

	res.Elapsed = end.Sub(start)
	if res.Elapsed <= 0 {
		res.Elapsed = s.Profile.Duration
		res.Virtual = true
	}
	res.OfferedQPS = s.OfferedQPS()
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.AchievedQPS = float64(res.Completed) / sec
	}
	return res
}
