package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
	"steerq/internal/serve"
)

// TestSDKHTTPLoadEquivalence is the cross-target oracle: the same pinned
// schedule driven at the in-process SDK and at a live daemon over HTTP must
// produce the identical per-signature decision mix — the serving tiers are
// two transports over one table, and the load harness can prove it.
func TestSDKHTTPLoadEquivalence(t *testing.T) {
	b := testBundle(t, 3, 40)
	sdkA := testSDK(t, b)
	sdkB := testSDK(t, b)
	_, base := startServer(t, sdkB, obs.NewWithClock(obs.FrozenClock()))
	if err := serve.WaitReady(base, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	s, err := Build(21, Profile{QPS: 600, Duration: time.Second, DiurnalAmp: 0.3}, testMix(b, 1.1, 0.15, 8))
	if err != nil {
		t.Fatal(err)
	}

	resSDK := Run(s, SDKTarget{SDK: sdkA}, frozenOpts(2))
	resHTTP := Run(s, HTTPTarget{Base: base}, frozenOpts(2))

	if resSDK.Errors != 0 || resHTTP.Errors != 0 {
		t.Fatalf("errors: sdk %d http %d", resSDK.Errors, resHTTP.Errors)
	}
	if resSDK.Hits != resHTTP.Hits || resSDK.Fallbacks != resHTTP.Fallbacks || resSDK.Defaults != resHTTP.Defaults {
		t.Fatalf("mix mismatch: sdk %d/%d/%d http %d/%d/%d",
			resSDK.Hits, resSDK.Fallbacks, resSDK.Defaults,
			resHTTP.Hits, resHTTP.Fallbacks, resHTTP.Defaults)
	}
	if !reflect.DeepEqual(resSDK.PerSig, resHTTP.PerSig) {
		t.Fatal("per-signature decision mixes differ between SDK and HTTP")
	}
}

// TestHTTPTargetDecodes checks HTTPTarget reconstructs the exact Decision an
// SDK lookup yields, entry by entry, including the default-config miss.
func TestHTTPTargetDecodes(t *testing.T) {
	b := testBundle(t, 2, 9)
	sdk := testSDK(t, b)
	_, base := startServer(t, sdk, obs.NewWithClock(obs.FrozenClock()))
	tgt := HTTPTarget{Base: base}

	for i, e := range b.Entries {
		want, ok := sdk.Lookup(e.Signature)
		if !ok {
			t.Fatal("sdk lookup failed")
		}
		got, err := tgt.Steer(e.Signature)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got.Version != want.Version || got.Kind != want.Kind || !got.Config.Equal(want.Config) {
			t.Fatalf("entry %d: http %+v, sdk %+v", i, got, want)
		}
	}
	miss := MissSignatures(1, 1, nil)[0]
	got, err := tgt.Steer(miss)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != serve.KindDefault || !got.Config.Equal(b.Default) {
		t.Fatalf("miss decision %+v", got)
	}
}

// TestTargetErrors pins the error taxonomy: an unloaded SDK and an unloaded
// daemon both surface 503 StatusErrors; malformed server answers surface
// decode errors, not bogus decisions.
func TestTargetErrors(t *testing.T) {
	empty := serve.NewSDK(obs.NewWithClock(obs.FrozenClock()))
	if _, err := (SDKTarget{SDK: empty}).Steer(bitvec.New(1)); !isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("unloaded SDK error %v", err)
	}

	_, base := startServer(t, empty, obs.NewWithClock(obs.FrozenClock()))
	if _, err := (HTTPTarget{Base: base}).Steer(bitvec.New(1)); !isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("unloaded daemon error %v", err)
	}

	for name, body := range map[string]string{
		"bad json":   `{"version":`,
		"bad kind":   `{"version":1,"kind":"sideways","config":"00"}`,
		"bad config": `{"version":1,"kind":"hit","config":"zz"}`,
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Write([]byte(body))
		}))
		_, err := HTTPTarget{Base: srv.URL}.Steer(bitvec.New(1))
		srv.Close()
		if err == nil {
			t.Fatalf("%s: decoded a decision from garbage", name)
		}
		var se *StatusError
		if errors.As(err, &se) {
			t.Fatalf("%s: garbage misreported as status error %v", name, err)
		}
	}

	if msg := (&StatusError{Code: 503, Msg: "draining"}).Error(); msg == "" {
		t.Fatal("empty StatusError message")
	}
}

func isStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// TestLoadMidDrain drives load into a draining daemon. The contract under
// test: once the drain begins, a request either completes with a decision
// that is internally consistent against the bundle oracle (it got in before
// the listener closed) or fails outright — connection refused or a 503 —
// and a torn or fabricated decision never appears. After the drain, every
// request is refused.
func TestLoadMidDrain(t *testing.T) {
	b := testBundle(t, 1, 24)
	sdk := testSDK(t, b)
	srv, base := startServer(t, sdk, obs.NewWithClock(obs.FrozenClock()))

	// Oracle: signature -> (kind, config hex) from the bundle itself.
	type want struct {
		kind serve.Kind
		cfg  string
	}
	oracle := make(map[bitvec.Key]want)
	for _, e := range b.Entries {
		k := serve.KindHit
		if e.Fallback {
			k = serve.KindFallback
		}
		oracle[e.Signature.Key()] = want{kind: k, cfg: e.Config.Hex()}
	}

	s, err := Build(31, flatProfile(2000, time.Second), testMix(b, 1.0, 0.1, 6))
	if err != nil {
		t.Fatal(err)
	}

	var drainOnce sync.Once
	var completions int64
	var mu sync.Mutex
	opts := Options{
		Workers: 4,
		Observe: func(i int, a Arrival, d serve.Decision, err error) {
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Refusals are legal mid-drain; torn successes are not.
				// Transport errors and StatusErrors both land here.
				return
			}
			if d.Version != 1 {
				t.Errorf("arrival %d: version %d", i, d.Version)
				return
			}
			if w, ok := oracle[a.Sig.Key()]; ok {
				if d.Kind != w.kind || d.Config.Hex() != w.cfg {
					t.Errorf("arrival %d: torn decision %+v, want kind %v cfg %s", i, d, w.kind, w.cfg)
				}
			} else if d.Kind != serve.KindDefault || d.Config.Hex() != b.Default.Hex() {
				t.Errorf("arrival %d: miss resolved to %+v", i, d)
			}
			completions++
			if completions == 50 {
				drainOnce.Do(func() { go srv.BeginDrain() })
			}
		},
	}
	res := Run(s, HTTPTarget{Base: base}, opts)
	if res.Completed < 50 {
		t.Fatalf("only %d completions before drain", res.Completed)
	}

	// Drained: the listener is gone; one more request must fail, and with a
	// transport error — the daemon is not answering at all.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := (HTTPTarget{Base: base}).Steer(b.Entries[0].Signature); err == nil {
		t.Fatal("steer succeeded after drain completed")
	} else if isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("post-drain request answered with a status, want refused transport: %v", err)
	}
}
