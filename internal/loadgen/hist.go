package loadgen

import "math"

// bucketBounds are the latency histogram's inclusive upper bounds in
// integer nanoseconds: a 1-2-5 series from 1µs to 5s, with one implicit
// overflow bucket above. Integer bucket counts are what make reports
// mergeable and byte-identical: addition commutes, and no float
// accumulation order can leak into the output.
var bucketBounds = [...]int64{
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000,
}

// Hist is a fixed-bucket integer latency histogram in the obs style: counts
// only, plus exact integer total and max. Not safe for concurrent use —
// each worker owns one and the runner merges them in worker order.
type Hist struct {
	counts [len(bucketBounds) + 1]int64
	count  int64
	sumNS  int64
	maxNS  int64
}

// Observe records one latency in nanoseconds (negative clamps to zero).
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := 0
	for ; i < len(bucketBounds); i++ {
		if ns <= bucketBounds[i] {
			break
		}
	}
	h.counts[i]++
	h.count++
	h.sumNS += ns
	if ns > h.maxNS {
		h.maxNS = ns
	}
}

// Merge folds o into h. Pure integer addition: commutative and associative,
// so any merge order yields the same histogram.
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sumNS += o.sumNS
	if o.maxNS > h.maxNS {
		h.maxNS = o.maxNS
	}
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.count }

// MaxNS reports the largest observed latency in nanoseconds.
func (h *Hist) MaxNS() int64 { return h.maxNS }

// MeanNS reports the exact mean latency in nanoseconds (0 when empty).
func (h *Hist) MeanNS() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sumNS / h.count
}

// Quantile reports the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket holding that rank — a conservative estimate, resolution-limited by
// the 1-2-5 series. The overflow bucket reports the observed max. An empty
// or all-zero histogram reports 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 || h.maxNS == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == len(bucketBounds) {
				return h.maxNS
			}
			return bucketBounds[i]
		}
	}
	return h.maxNS
}
