package loadgen

import (
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/bundle"
	"steerq/internal/obs"
	"steerq/internal/serve"
	"steerq/internal/workload"
)

// testBundle builds a bundle with n unique-signature entries: entry i's
// signature encodes i in its low 16 bits plus a marker bit, so signatures
// cannot collide at any n < 65536. Every third entry is a fallback pinned to
// the default; steered configs carry the version in their bits, which is
// what the torn-decision oracle checks against.
func testBundle(t *testing.T, version uint64, n int) *bundle.Bundle {
	t.Helper()
	if n >= 1<<16 {
		t.Fatalf("testBundle supports < 65536 entries, got %d", n)
	}
	b := &bundle.Bundle{
		Version:     version,
		CreatedUnix: 1700000000,
		Workload:    "W",
		Default:     bitvec.New(200, 201),
	}
	for i := 0; i < n; i++ {
		sig := bitvec.New(100)
		for j := 0; j < 16; j++ {
			if i>>j&1 == 1 {
				sig.Set(j)
			}
		}
		e := bundle.Entry{Signature: sig}
		if i%3 == 2 {
			e.Config, e.Fallback = b.Default, true
		} else {
			cfg := bitvec.New(150, 151+i%8)
			if version%2 == 0 {
				cfg.Set(160)
			} else {
				cfg.Set(161)
			}
			e.Config = cfg
		}
		b.Entries = append(b.Entries, e)
	}
	return b
}

// testSDK builds an SDK with b loaded, on a frozen clock.
func testSDK(t *testing.T, b *bundle.Bundle) *serve.SDK {
	t.Helper()
	sdk := serve.NewSDK(obs.NewWithClock(obs.FrozenClock()))
	if err := sdk.Load(b); err != nil {
		t.Fatal(err)
	}
	return sdk
}

// testMix builds a Zipf-weighted mix over b's entries with missFrac of
// traffic drawn from nMiss signatures absent from the bundle.
func testMix(b *bundle.Bundle, skew, missFrac float64, nMiss int) Mix {
	sigs := make([]bitvec.Vector, len(b.Entries))
	for i, e := range b.Entries {
		sigs[i] = e.Signature
	}
	m := Mix{Signatures: sigs, MissFrac: missFrac}
	if skew > 0 {
		m.Weights = workload.ZipfProbs(len(sigs), skew)
	}
	if nMiss > 0 {
		m.Miss = MissSignatures(99, nMiss, sigs)
	}
	return m
}

// startServer starts a serve.Server over sdk on a loopback listener and
// returns it with its base URL; closed when the test finishes.
func startServer(t *testing.T, sdk *serve.SDK, reg *obs.Registry) (*serve.Server, string) {
	t.Helper()
	s := serve.NewServer(sdk, reg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, "http://" + s.Addr()
}
