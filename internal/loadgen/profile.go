package loadgen

import (
	"fmt"
	"math"
	"time"
)

// integralSteps is the fixed midpoint-rule resolution used to normalize a
// profile's shape. A power of two, fixed forever: the integral is part of
// the deterministic arrival schedule, so changing the resolution changes
// every pinned-seed golden.
const integralSteps = 4096

// Burst is a flash crowd: the offered rate is multiplied by Factor over
// [Start, Start+Dur). Bursts compose multiplicatively with each other and
// with the diurnal ramp.
type Burst struct {
	Start  time.Duration
	Dur    time.Duration
	Factor float64
}

// Profile describes the open-loop offered load: how many arrivals over how
// long, shaped how. The shape is normalized so the configured total offered
// load is QPS·Duration regardless of ramps and bursts — a diurnal profile
// redistributes arrivals over the run, it does not add any.
type Profile struct {
	// QPS is the mean offered arrival rate over the whole run.
	QPS float64
	// Duration is the length of the arrival timeline.
	Duration time.Duration
	// DiurnalAmp in [0, 1) superimposes a full sine day over the run:
	// weight 1−amp at the start and end (trough) and 1+amp at mid-run
	// (peak). Zero means flat.
	DiurnalAmp float64
	// Bursts are flash crowds multiplied on top of the base shape.
	Bursts []Burst
}

// Validate checks the profile is well-formed.
func (p Profile) Validate() error {
	if !(p.QPS > 0) {
		return fmt.Errorf("loadgen: profile QPS %g, want > 0", p.QPS)
	}
	if p.Duration <= 0 {
		return fmt.Errorf("loadgen: profile duration %v, want > 0", p.Duration)
	}
	if p.DiurnalAmp < 0 || p.DiurnalAmp >= 1 {
		return fmt.Errorf("loadgen: diurnal amplitude %g outside [0, 1)", p.DiurnalAmp)
	}
	for i, b := range p.Bursts {
		if !(b.Factor > 0) {
			return fmt.Errorf("loadgen: burst %d factor %g, want > 0", i, b.Factor)
		}
		if b.Start < 0 || b.Dur <= 0 || b.Start+b.Dur > p.Duration {
			return fmt.Errorf("loadgen: burst %d window [%v, %v+%v) outside the run", i, b.Start, b.Start, b.Dur)
		}
	}
	return nil
}

// weight is the unnormalized shape at t seconds into the run.
func (p Profile) weight(t float64) float64 {
	w := 1.0
	if p.DiurnalAmp != 0 {
		day := p.Duration.Seconds()
		w *= 1 + p.DiurnalAmp*math.Sin(2*math.Pi*t/day-math.Pi/2)
	}
	for _, b := range p.Bursts {
		if t >= b.Start.Seconds() && t < b.Start.Seconds()+b.Dur.Seconds() {
			w *= b.Factor
		}
	}
	return w
}

// shapeIntegral is ∫ weight dt over the run, by fixed-step midpoint rule —
// deterministic, and exact enough that the normalized offered total is
// within a fraction of a percent of QPS·Duration.
func (p Profile) shapeIntegral() float64 {
	day := p.Duration.Seconds()
	dt := day / integralSteps
	var sum float64
	for i := 0; i < integralSteps; i++ {
		sum += p.weight((float64(i) + 0.5) * dt)
	}
	return sum * dt
}

// Rate is the normalized instantaneous offered rate at t seconds into the
// run: QPS·Duration·weight(t)/∫weight. Integrating Rate over the run gives
// the configured total offered load for any shape.
func (p Profile) Rate(t float64) float64 {
	return p.QPS * p.Duration.Seconds() * p.weight(t) / p.shapeIntegral()
}

// MaxRate is an upper bound on Rate over the run — the thinning sampler's
// envelope. weight(t) ≤ (1+amp)·Π max(1, factor) pointwise, so the bound is
// analytic, not a grid scan that could undershoot between samples.
func (p Profile) MaxRate() float64 {
	wmax := 1 + p.DiurnalAmp
	for _, b := range p.Bursts {
		if b.Factor > 1 {
			wmax *= b.Factor
		}
	}
	return p.QPS * p.Duration.Seconds() * wmax / p.shapeIntegral()
}
