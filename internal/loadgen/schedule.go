package loadgen

import (
	"fmt"
	"sort"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/xrand"
)

// Mix describes what the arrivals ask for: the known signature population
// with its popularity weights, plus a block of miss signatures absent from
// the serving table that a MissFrac slice of the traffic draws uniformly.
type Mix struct {
	// Signatures is the known population (typically the bundle's entries).
	Signatures []bitvec.Vector
	// Weights are the popularity weights, parallel to Signatures. They need
	// not sum to one; Build normalizes. Nil means uniform.
	Weights []float64
	// Miss are signatures guaranteed absent from the table (see
	// MissSignatures); MissFrac of the arrivals draw from them uniformly.
	Miss     []bitvec.Vector
	MissFrac float64
}

// Validate checks the mix is well-formed.
func (m Mix) Validate() error {
	if len(m.Signatures) == 0 {
		return fmt.Errorf("loadgen: mix has no signatures")
	}
	if m.Weights != nil && len(m.Weights) != len(m.Signatures) {
		return fmt.Errorf("loadgen: %d weights for %d signatures", len(m.Weights), len(m.Signatures))
	}
	var sum float64
	for i, w := range m.Weights {
		if w < 0 {
			return fmt.Errorf("loadgen: negative weight %g at %d", w, i)
		}
		sum += w
	}
	if m.Weights != nil && !(sum > 0) {
		return fmt.Errorf("loadgen: weights sum to %g, want > 0", sum)
	}
	if m.MissFrac < 0 || m.MissFrac > 1 {
		return fmt.Errorf("loadgen: miss fraction %g outside [0, 1]", m.MissFrac)
	}
	if m.MissFrac > 0 && len(m.Miss) == 0 {
		return fmt.Errorf("loadgen: miss fraction %g with no miss signatures", m.MissFrac)
	}
	return nil
}

// Arrival is one intended request: its offset from the start of the run and
// the signature it asks for. The offset is the *intended* arrival instant —
// the latency accounting baseline under pacing, which is what keeps the
// report honest about coordinated omission.
type Arrival struct {
	At  time.Duration
	Sig bitvec.Vector
}

// Schedule is a fully materialized arrival timeline. It is built once,
// before any worker starts, purely from (seed, profile, mix) — which is the
// whole determinism argument: the schedule cannot depend on worker count,
// pacing, or the clock, because those haven't entered the picture yet.
type Schedule struct {
	Arrivals []Arrival
	Profile  Profile
}

// Build materializes the arrival schedule for a seeded non-homogeneous
// Poisson process shaped by p, with signatures drawn from mix. The process
// is sampled by thinning: candidate arrivals come from a homogeneous
// process at the profile's analytic max rate, and each is accepted with
// probability rate(t)/maxRate. Same seed, same inputs — same schedule,
// byte for byte.
func Build(seed uint64, p Profile, mix Mix) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}

	// Cumulative popularity, normalized, for binary-search draws.
	cum := make([]float64, len(mix.Signatures))
	var sum float64
	for i := range mix.Signatures {
		w := 1.0
		if mix.Weights != nil {
			w = mix.Weights[i]
		}
		sum += w
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}

	day := p.Duration.Seconds()
	norm := p.QPS * day / p.shapeIntegral()
	wmax := 1 + p.DiurnalAmp
	for _, b := range p.Bursts {
		if b.Factor > 1 {
			wmax *= b.Factor
		}
	}
	rmax := norm * wmax

	arr := xrand.New(seed).Derive("loadgen", "arrivals")
	sigs := xrand.New(seed).Derive("loadgen", "sigs")
	s := &Schedule{Profile: p}
	for t := arr.Exp(rmax); t < day; t += arr.Exp(rmax) {
		if !arr.Bool(norm * p.weight(t) / rmax) {
			continue
		}
		var sig bitvec.Vector
		if mix.MissFrac > 0 && sigs.Bool(mix.MissFrac) {
			sig = mix.Miss[sigs.Intn(len(mix.Miss))]
		} else {
			u := sigs.Float64()
			sig = mix.Signatures[sort.SearchFloat64s(cum, u)]
		}
		s.Arrivals = append(s.Arrivals, Arrival{At: time.Duration(t * float64(time.Second)), Sig: sig})
	}
	return s, nil
}

// OfferedQPS is the schedule's realized offered rate: arrivals over the
// configured duration.
func (s *Schedule) OfferedQPS() float64 {
	return float64(len(s.Arrivals)) / s.Profile.Duration.Seconds()
}

// MissSignatures derives n signatures guaranteed absent from known, by
// seeded rejection sampling. Deterministic for a given (seed, n, known).
func MissSignatures(seed uint64, n int, known []bitvec.Vector) []bitvec.Vector {
	taken := make(map[bitvec.Key]bool, len(known))
	for _, v := range known {
		taken[v.Key()] = true
	}
	r := xrand.New(seed).Derive("loadgen", "miss")
	out := make([]bitvec.Vector, 0, n)
	for len(out) < n {
		var v bitvec.Vector
		for j := 0; j < 8; j++ {
			v.Set(r.Intn(bitvec.Width))
		}
		if taken[v.Key()] {
			continue
		}
		taken[v.Key()] = true
		out = append(out, v)
	}
	return out
}
