package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// Figure1 reproduces Figure 1: one rule configuration applied to a recurring
// job group over a span of days, with per-job percentage runtime change.
type Figure1 struct {
	Workload    string
	GroupSize   int
	Days        int
	Comparisons []steering.Comparison
}

// Figure1 finds the analyzed job whose best configuration extrapolates most
// consistently across its rule-signature job group over `days` days, then
// reports that configuration's per-job changes (capped at maxJobs jobs, 65 in
// the paper's plot).
func (r *Runner) Figure1(name string, days, maxJobs int) (*Figure1, error) {
	h := r.Harness(name)
	as := r.AnalyzedJobs(name, 0)
	// Rank candidate base jobs by their best improvement.
	type scored struct {
		a   *steering.Analysis
		pct float64
	}
	var sc []scored
	for _, a := range as {
		best := a.BestAlternative(steering.MetricRuntime)
		if best == nil {
			continue
		}
		pct := a.PercentChange(best, steering.MetricRuntime)
		if pct < -10 {
			sc = append(sc, scored{a, pct})
		}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].pct < sc[j].pct })

	// Collect the multi-day corpus once.
	var corpus []*workload.Job
	for d := 0; d < days; d++ {
		corpus = append(corpus, r.Day(name, d)...)
	}
	grouper := steering.NewGrouper(h)

	best := &Figure1{Workload: name, Days: days}
	bestScore := math.Inf(1)
	for i := 0; i < len(sc) && i < 5; i++ {
		a := sc[i].a
		sig := a.Default.Signature
		var group []*workload.Job
		for _, j := range corpus {
			js, err := grouper.DefaultSignature(j)
			if err != nil {
				continue
			}
			if js.Equal(sig) && j.ID != a.Job.ID {
				group = append(group, j)
			}
		}
		if len(group) < 5 {
			continue
		}
		if len(group) > maxJobs {
			group = group[:maxJobs]
		}
		cfg := a.BestAlternative(steering.MetricRuntime).Config
		cmp := steering.Extrapolate(h, cfg, group)
		if len(cmp) == 0 {
			continue
		}
		var mean float64
		for _, c := range cmp {
			mean += c.PctChange
		}
		mean /= float64(len(cmp))
		if mean < bestScore {
			bestScore = mean
			best.Comparisons = cmp
			best.GroupSize = len(group)
		}
	}
	return best, nil
}

// Render prints the per-job series.
func (f *Figure1) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: one configuration across a recurring job group, workload %s, %d days\n", f.Workload, f.Days)
	improved := 0
	for _, c := range f.Comparisons {
		if c.PctChange < 0 {
			improved++
		}
		fmt.Fprintf(w, "  %-14s default=%7.0fs steered=%7.0fs  %+6.1f%%\n",
			c.Job.ID, c.Default.Metrics.RuntimeSec, c.New.Metrics.RuntimeSec, c.PctChange)
	}
	fmt.Fprintf(w, "  summary: %d/%d jobs improved\n", improved, len(f.Comparisons))
}

// Figure2 reproduces Figure 2's four panels over one day of a workload:
// (a) the runtime distribution, (b) how many jobs use each rule, (c) how many
// distinct rules each job uses, (d) the rule-signature group-size
// distribution.
type Figure2 struct {
	Workload string

	RuntimeHist Histogram
	// LongJobFrac is the fraction of jobs over five minutes;
	// LongJobContainers their share of containers (the paper: ~10% of jobs
	// hold ~90% of containers).
	LongJobFrac       float64
	LongJobContainers float64

	// RuleUsage[i] is the number of jobs using the i-th most used rule.
	RuleUsage []int
	// RulesPerJob histograms distinct rules per job.
	RulesPerJob Histogram
	// GroupSizes lists signature-group sizes, descending.
	GroupSizes []int
}

// Figure2 computes the four distributions.
func (r *Runner) Figure2(name string, day int) (*Figure2, error) {
	h := r.Harness(name)
	jobs := r.Day(name, day)

	var runtimes, perJob []float64
	usage := make(map[int]int)
	groupSizes := make(map[bitvec.Key]int)
	var totalVertices, longVertices float64
	long := 0
	for _, j := range jobs {
		t := r.DefaultTrial(name, j)
		if t.Err != nil {
			continue
		}
		rt := t.Metrics.RuntimeSec
		runtimes = append(runtimes, rt)
		v := t.Metrics.VertexSeconds
		totalVertices += v
		if rt > 300 {
			long++
			longVertices += v
		}
		ones := t.Signature.Ones()
		perJob = append(perJob, float64(len(ones)))
		for _, id := range ones {
			usage[id]++
		}
		groupSizes[t.Signature.Key()]++
	}
	_ = h

	f := &Figure2{Workload: name}
	f.RuntimeHist = NewHistogram("runtime (s)",
		[]float64{0, 10, 30, 60, 120, 300, 600, 1800, 3600, 7200, 86400}, runtimes)
	if len(runtimes) > 0 {
		f.LongJobFrac = float64(long) / float64(len(runtimes))
	}
	if totalVertices > 0 {
		f.LongJobContainers = longVertices / totalVertices
	}
	for _, n := range usage {
		f.RuleUsage = append(f.RuleUsage, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(f.RuleUsage)))
	f.RulesPerJob = NewHistogram("rules per job",
		[]float64{0, 4, 6, 8, 10, 12, 14, 16, 20, 32}, perJob)
	for _, n := range groupSizes {
		f.GroupSizes = append(f.GroupSizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(f.GroupSizes)))
	return f, nil
}

// Render prints all four panels.
func (f *Figure2) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 2 (workload %s):\n", f.Workload)
	fmt.Fprintf(w, "(a) runtime distribution; %.0f%% of jobs >5min holding %.0f%% of containers\n",
		100*f.LongJobFrac, 100*f.LongJobContainers)
	f.RuntimeHist.Render(w)
	fmt.Fprintf(w, "(b) jobs per rule (most-used first): %v\n", headInts(f.RuleUsage, 20))
	fmt.Fprintf(w, "(c) distinct rules used per job:\n")
	f.RulesPerJob.Render(w)
	fmt.Fprintf(w, "(d) rule-signature group sizes (descending): %v\n", headInts(f.GroupSizes, 20))
}

func headInts(s []int, n int) []int {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Figure3 reproduces Figure 3: the average (± one standard deviation) number
// of span rules per job, grouped by rule category.
type Figure3 struct {
	Workload string
	Jobs     int
	Rows     []Figure3Row
}

// Figure3Row is one category.
type Figure3Row struct {
	Category string
	Mean     float64
	Std      float64
}

// Figure3 computes spans over a sample of the day's jobs.
func (r *Runner) Figure3(name string, day, sample int) (*Figure3, error) {
	h := r.Harness(name)
	jobs := r.Day(name, day)
	rnd := r.sampleRand(name, "fig3")
	idx := rnd.Sample(len(jobs), sample)

	cats := []string{"off-by-default", "on-by-default", "implementation", "total"}
	vals := make(map[string][]float64, len(cats))
	n := 0
	for _, i := range idx {
		span, err := steering.JobSpan(h.Opt, jobs[i].Root)
		if err != nil {
			continue
		}
		n++
		byCat := steering.SpanByCategory(span, h.Opt.Rules)
		total := 0
		for _, cat := range []cascades.Category{
			cascades.Required, cascades.OffByDefault, cascades.OnByDefault, cascades.Implementation,
		} {
			v, ok := byCat[cat]
			if !ok {
				continue
			}
			c := cat.String()
			vals[c] = append(vals[c], float64(v.Count()))
			total += v.Count()
		}
		vals["total"] = append(vals["total"], float64(total))
	}
	out := &Figure3{Workload: name, Jobs: n}
	for _, c := range cats {
		m, s := meanStd(vals[c], n)
		out.Rows = append(out.Rows, Figure3Row{Category: c, Mean: m, Std: s})
	}
	return out, nil
}

func meanStd(vals []float64, n int) (mean, std float64) {
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / float64(n) // jobs without any rule of a category count as 0
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	ss += float64(n-len(vals)) * mean * mean
	std = math.Sqrt(ss / float64(n))
	return mean, std
}

// Render prints mean ± std per category.
func (f *Figure3) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: rules in the job span by category (workload %s, %d jobs)\n", f.Workload, f.Jobs)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "  %-16s %5.1f +/- %4.1f\n", r.Category, r.Mean, r.Std)
	}
}

// Figure4 reproduces Figure 4: the default plan's estimated cost versus the
// estimated costs of all recompiled candidate configurations, for a sample of
// jobs — demonstrating that recompilation under different configurations
// finds plans the optimizer itself costs *below* the default, the paper's
// §5.3 "paradox".
type Figure4 struct {
	Workload string
	Rows     []Figure4Row
}

// Figure4Row is one job.
type Figure4Row struct {
	Job         string
	DefaultCost float64
	Candidates  int
	MinCost     float64
	MedianCost  float64
	CheaperFrac float64
}

// Figure4 recompiles candidates for `sample` random jobs of the day.
// Recompilation is cheap, so the sample spans the whole day's jobs (the
// execution-stage filters of §5.3 do not apply to this cost-only stage).
func (r *Runner) Figure4(name string, day, sample int) (*Figure4, error) {
	p := r.Pipeline(name)
	jobs := r.Day(name, day)
	rnd := r.sampleRand(name, "fig4")
	idx := rnd.Sample(len(jobs), sample)
	out := &Figure4{Workload: name}
	for _, i := range idx {
		a, err := p.Recompile(jobs[i])
		if err != nil || len(a.Candidates) == 0 {
			continue
		}
		costs := make([]float64, 0, len(a.Candidates))
		cheaper := 0
		for _, c := range a.Candidates {
			costs = append(costs, c.EstCost)
			if c.EstCost < a.Default.EstCost {
				cheaper++
			}
		}
		sort.Float64s(costs)
		out.Rows = append(out.Rows, Figure4Row{
			Job:         jobs[i].ID,
			DefaultCost: a.Default.EstCost,
			Candidates:  len(costs),
			MinCost:     costs[0],
			MedianCost:  costs[len(costs)/2],
			CheaperFrac: float64(cheaper) / float64(len(costs)),
		})
	}
	return out, nil
}

// Render prints per-job cost spreads.
func (f *Figure4) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: default vs candidate estimated costs (workload %s)\n", f.Workload)
	fmt.Fprintf(w, "  %-14s %10s %6s %10s %10s %9s\n", "job", "default", "#cand", "min", "median", "%cheaper")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "  %-14s %10.1f %6d %10.1f %10.1f %8.0f%%\n",
			r.Job, r.DefaultCost, r.Candidates, r.MinCost, r.MedianCost, 100*r.CheaperFrac)
	}
}

// Figure5 reproduces Figure 5: the estimated-cost versus runtime scatter of a
// day's jobs under the default configuration, bucketed into a quantile grid.
// The interesting region is the top-left corner — cheap on paper, slow in
// reality — which heuristic (2) of §6.1 mines for steering candidates.
type Figure5 struct {
	Workload string
	// Grid[i][j] counts jobs in cost-quantile column j and runtime-quantile
	// row i (row 0 = slowest).
	Grid       [5][5]int
	CostEdges  [6]float64
	RtEdges    [6]float64
	CornerJobs []string // examples from the low-cost/high-runtime corner
}

// Figure5 computes the scatter grid.
func (r *Runner) Figure5(name string, day int) (*Figure5, error) {
	type pt struct {
		job      string
		cost, rt float64
	}
	var pts []pt
	for _, j := range r.Day(name, day) {
		t := r.DefaultTrial(name, j)
		if t.Err != nil {
			continue
		}
		pts = append(pts, pt{j.ID, t.EstCost, t.Metrics.RuntimeSec})
	}
	f := &Figure5{Workload: name}
	if len(pts) == 0 {
		return f, nil
	}
	costs := make([]float64, len(pts))
	rts := make([]float64, len(pts))
	for i, p := range pts {
		costs[i], rts[i] = p.cost, p.rt
	}
	sort.Float64s(costs)
	sort.Float64s(rts)
	q := func(s []float64, frac float64) float64 { return s[int(frac*float64(len(s)-1))] }
	for i := 0; i <= 5; i++ {
		f.CostEdges[i] = q(costs, float64(i)/5)
		f.RtEdges[i] = q(rts, float64(i)/5)
	}
	bucket := func(edges [6]float64, v float64) int {
		for b := 0; b < 4; b++ {
			if v < edges[b+1] {
				return b
			}
		}
		return 4
	}
	for _, p := range pts {
		cb := bucket(f.CostEdges, p.cost)
		rb := bucket(f.RtEdges, p.rt)
		f.Grid[4-rb][cb]++ // row 0 = slowest quantile
		if cb <= 1 && rb >= 4 && len(f.CornerJobs) < 8 {
			f.CornerJobs = append(f.CornerJobs, fmt.Sprintf("%s(cost=%.0f,rt=%.0fs)", p.job, p.cost, p.rt))
		}
	}
	return f, nil
}

// Render prints the quantile grid.
func (f *Figure5) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: estimated cost (columns, cheap->expensive) vs runtime (rows, slow->fast), workload %s\n", f.Workload)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(w, "  rt q%d |", 5-i)
		for j := 0; j < 5; j++ {
			fmt.Fprintf(w, " %5d", f.Grid[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  low-cost/high-runtime corner examples: %v\n", f.CornerJobs)
}

// Figure6 reproduces Figure 6: per selected job, the percentage runtime
// change of the best executed alternative configuration.
type Figure6 struct {
	Workload string
	Changes  []Figure6Row
}

// Figure6Row is one job.
type Figure6Row struct {
	Job       string
	DefaultRT float64
	BestRT    float64
	PctChange float64
}

// Figure6 reports the analyzed jobs of one workload.
func (r *Runner) Figure6(name string, day int) (*Figure6, error) {
	as := r.AnalyzedJobs(name, day)
	f := &Figure6{Workload: name}
	for _, a := range as {
		best := a.BestAlternative(steering.MetricRuntime)
		if best == nil {
			continue
		}
		f.Changes = append(f.Changes, Figure6Row{
			Job:       a.Job.ID,
			DefaultRT: a.Default.Metrics.RuntimeSec,
			BestRT:    best.Metrics.RuntimeSec,
			PctChange: a.PercentChange(best, steering.MetricRuntime),
		})
	}
	sort.Slice(f.Changes, func(i, j int) bool { return f.Changes[i].PctChange < f.Changes[j].PctChange })
	return f, nil
}

// Render prints the sorted change series.
func (f *Figure6) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 (workload %s): best alternative configuration per job\n", f.Workload)
	improved := 0
	for _, c := range f.Changes {
		if c.PctChange < 0 {
			improved++
		}
		fmt.Fprintf(w, "  %-14s default=%7.0fs best=%7.0fs  %+6.1f%%\n", c.Job, c.DefaultRT, c.BestRT, c.PctChange)
	}
	fmt.Fprintf(w, "  summary: %d/%d improved\n", improved, len(f.Changes))
}

// Figure7 reproduces Figure 7: for each analyzed Workload B job, pick the
// executed configuration that is best for one metric and report the change in
// all three metrics — exposing the cross-metric tension of §6.2.
type Figure7 struct {
	Workload string
	// Panels[m] selects by metric m; each row holds the three metric
	// changes for one job.
	Panels [3][]Figure7Row
}

// Figure7Row is one job under one selection policy.
type Figure7Row struct {
	Job                       string
	RuntimePct, CPUPct, IOPct float64
}

// Figure7 derives the three panels from the cached analyses. Workload B's
// long-running jobs are few per day, so the experiment pools analyses over
// days [0, day] (the paper pooled B jobs across days for its 100-job panels,
// §6.4).
func (r *Runner) Figure7(name string, day int) (*Figure7, error) {
	var as []*steering.Analysis
	for d := 0; d <= day; d++ {
		as = append(as, r.AnalyzedJobs(name, d)...)
	}
	f := &Figure7{Workload: name}
	for mi, m := range []steering.Metric{steering.MetricRuntime, steering.MetricCPU, steering.MetricIO} {
		for _, a := range as {
			// Choose among the executed configurations *including* the
			// default: jobs where no alternative wins keep their default
			// plan (the paper's bar-less entries).
			best := a.BestConfig(m)
			f.Panels[mi] = append(f.Panels[mi], Figure7Row{
				Job:        a.Job.ID,
				RuntimePct: a.PercentChange(best, steering.MetricRuntime),
				CPUPct:     a.PercentChange(best, steering.MetricCPU),
				IOPct:      a.PercentChange(best, steering.MetricIO),
			})
		}
	}
	return f, nil
}

// Render prints the three panels with per-metric regression counts.
func (f *Figure7) Render(w io.Writer) {
	labels := []string{"(a) best runtime", "(b) best CPU time", "(c) best I/O time"}
	fmt.Fprintf(w, "Figure 7 (workload %s): metric tension across configuration selection policies\n", f.Workload)
	for mi, rows := range f.Panels {
		var regRT, regCPU, regIO int
		for _, r := range rows {
			if r.RuntimePct > 1 {
				regRT++
			}
			if r.CPUPct > 1 {
				regCPU++
			}
			if r.IOPct > 1 {
				regIO++
			}
		}
		fmt.Fprintf(w, "%s: %d jobs; regressions runtime=%d cpu=%d io=%d\n", labels[mi], len(rows), regRT, regCPU, regIO)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-14s rt=%+6.1f%% cpu=%+6.1f%% io=%+6.1f%%\n", r.Job, r.RuntimePct, r.CPUPct, r.IOPct)
		}
	}
}

// sampleRand returns a deterministic sampling stream for one experiment.
func (r *Runner) sampleRand(name, tag string) *xrand.Source {
	return xrand.New(r.Cfg.Seed).Derive("exp", name, tag)
}
