package experiments

import (
	"fmt"
	"io"
	"sort"

	"steerq/internal/bitvec"
	"steerq/internal/par"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// AblationRandomVsGuided reproduces the "when the cost model is completely
// wrong" check of §6.2: for the same jobs, execute K configurations chosen by
// the cost model (cheapest recompiled plans) versus K configurations drawn
// uniformly from the candidate pool, and compare the best runtime each policy
// finds. The paper executed several random candidates for twenty jobs and
// found only one case where a random pick beat the guided ones — evidence
// that the estimated cost, although not comparable across configurations, is
// still a useful plan-quality signal.
type AblationRandomVsGuided struct {
	Workload string
	Rows     []RandomVsGuidedRow
}

// RandomVsGuidedRow is one job's outcome under both policies.
type RandomVsGuidedRow struct {
	Job        string
	DefaultRT  float64
	GuidedBest float64 // best runtime among the K cheapest-by-cost configs
	RandomBest float64 // best runtime among K uniformly chosen configs
}

// RandomVsGuided runs the ablation over `jobs` analyzed jobs of the workload.
func (r *Runner) RandomVsGuided(name string, day, jobs, k int) (*AblationRandomVsGuided, error) {
	p := r.Pipeline(name)
	h := r.Harness(name)
	rnd := r.sampleRand(name, "ablation-rvg")
	long := r.LongJobs(name, day)
	idx := rnd.Sample(len(long), jobs)
	out := &AblationRandomVsGuided{Workload: name}
	// The pipeline is shared across workers below, so its selection width is
	// set once up front rather than mutated per job.
	p.ExecutePerJob = k
	type slot struct {
		row RandomVsGuidedRow
		ok  bool
	}
	// Per-job randomness comes from streams derived by job ID, not from rnd's
	// own sequence, so the fan-out order cannot change any draw.
	slots, _ := par.Map(r.Cfg.Workers, idx, func(_, i int) (slot, error) {
		job := long[i]
		a, err := p.Recompile(job)
		if err != nil || len(a.Candidates) == 0 {
			return slot{}, nil
		}
		// Guided: the pipeline's standard selection.
		p.Execute(a)
		guided := bestRuntime(a)

		// Random: K uniform draws from the same candidate pool.
		randomBest := a.Default.Metrics.RuntimeSec
		seen := map[bitvec.Key]bool{a.Default.Signature.Key(): true}
		picked := 0
		for _, ci := range rnd.Derive("job", job.ID).Perm(len(a.Candidates)) {
			if picked >= k {
				break
			}
			c := a.Candidates[ci]
			if seen[c.Signature.Key()] {
				continue
			}
			seen[c.Signature.Key()] = true
			picked++
			t := h.RunConfig(job.Root, c.Config, job.Day, fmt.Sprintf("%s/rand%d", job.ID, picked))
			if t.Err == nil && t.Metrics.RuntimeSec < randomBest {
				randomBest = t.Metrics.RuntimeSec
			}
		}
		return slot{row: RandomVsGuidedRow{
			Job:        job.ID,
			DefaultRT:  a.Default.Metrics.RuntimeSec,
			GuidedBest: guided,
			RandomBest: randomBest,
		}, ok: true}, nil
	})
	for _, s := range slots {
		if s.ok {
			out.Rows = append(out.Rows, s.row)
		}
	}
	return out, nil
}

func bestRuntime(a *steering.Analysis) float64 {
	best := a.Default.Metrics.RuntimeSec
	if alt := a.BestAlternative(steering.MetricRuntime); alt != nil && alt.Metrics.RuntimeSec < best {
		best = alt.Metrics.RuntimeSec
	}
	return best
}

// Render prints the comparison.
func (a *AblationRandomVsGuided) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation (§6.2): cost-guided vs random configuration selection, workload %s\n", a.Workload)
	fmt.Fprintf(w, "  %-14s %10s %12s %12s\n", "job", "default", "guided-best", "random-best")
	guidedWins, randomWins := 0, 0
	for _, r := range a.Rows {
		fmt.Fprintf(w, "  %-14s %9.0fs %11.0fs %11.0fs\n", r.Job, r.DefaultRT, r.GuidedBest, r.RandomBest)
		if r.GuidedBest < r.RandomBest*0.99 {
			guidedWins++
		} else if r.RandomBest < r.GuidedBest*0.99 {
			randomWins++
		}
	}
	fmt.Fprintf(w, "  guided better on %d jobs, random better on %d of %d\n", guidedWins, randomWins, len(a.Rows))
}

// AblationSpanSearch quantifies what the job span (Definition 5.1) buys: the
// same randomized search run over the full set of 219 non-required rules
// instead of the span wastes most of its budget on configurations that do not
// change the plan at all.
type AblationSpanSearch struct {
	Workload string
	Jobs     int
	// Per policy: fraction of candidates that compiled, fraction of
	// compiled candidates whose signature differs from the default (i.e.
	// candidates that actually changed the plan), and the number of
	// *distinct* plans (signatures) discovered per 100 candidates — the
	// real currency of the search.
	SpanCompiled, SpanChanged, SpanDistinct    float64
	NaiveCompiled, NaiveChanged, NaiveDistinct float64
}

// SpanSearch runs the ablation over `jobs` sampled jobs with m candidates
// per policy.
func (r *Runner) SpanSearch(name string, day, jobs, m int) (*AblationSpanSearch, error) {
	h := r.Harness(name)
	rnd := r.sampleRand(name, "ablation-span")
	all := r.Day(name, day)
	idx := rnd.Sample(len(all), jobs)
	out := &AblationSpanSearch{Workload: name}

	nonRequired := bitvec.New(h.Opt.Rules.NonRequiredIDs()...)
	// Each job tallies into its own slot; the serial reduce below sums them
	// in input order, so the totals match a Workers=1 run exactly.
	type tally struct {
		counted                                          bool
		spanTried, spanOK, spanChanged, spanDistinct     int
		naiveTried, naiveOK, naiveChanged, naiveDistinct int
	}
	// Candidates resolve through footprint equivalence classes: one compile
	// per class, every other member shares its outcome (value-identical by
	// the footprint soundness argument, so the tallies match a compile-all
	// run bit for bit — only faster).
	policy := func(job *workload.Job, def bitvec.Vector, span bitvec.Vector, r *xrand.Source) (tried, ok, changed, distinct int) {
		sigs := map[bitvec.Key]bool{def.Key(): true}
		var classes steering.FootprintClasses
		for _, cfg := range steering.CandidateConfigs(span, h.Opt.Rules, m, r) {
			tried++
			v, hit := classes.Lookup(cfg)
			if !hit {
				res, err := h.Opt.Optimize(job.Root, cfg)
				if err != nil {
					if res != nil {
						// No-plan verdicts carry footprints too; share them.
						classes.Admit(cfg, steering.CompileValue{Footprint: res.Footprint})
					}
					continue
				}
				v = steering.CompileValue{Cost: res.Cost, Signature: res.Signature, Footprint: res.Footprint, OK: true}
				classes.Admit(cfg, v)
			}
			if !v.OK {
				continue
			}
			ok++
			if !v.Signature.Equal(def) {
				changed++
			}
			if !sigs[v.Signature.Key()] {
				sigs[v.Signature.Key()] = true
				distinct++
			}
		}
		return tried, ok, changed, distinct
	}
	slots, _ := par.Map(r.Cfg.Workers, idx, func(_, i int) (tally, error) {
		job := all[i]
		def, err := h.Opt.Optimize(job.Root, h.Opt.Rules.DefaultConfig())
		if err != nil {
			return tally{}, nil
		}
		t := tally{counted: true}
		span, err := steering.JobSpan(h.Opt, job.Root)
		if err != nil {
			return t, nil
		}
		t.spanTried, t.spanOK, t.spanChanged, t.spanDistinct =
			policy(job, def.Signature, span, rnd.Derive("span", job.ID))
		// Naive policy: the "span" is every non-required rule.
		t.naiveTried, t.naiveOK, t.naiveChanged, t.naiveDistinct =
			policy(job, def.Signature, nonRequired, rnd.Derive("naive", job.ID))
		return t, nil
	})
	var spanTried, spanOK, spanChanged, spanDistinct int
	var naiveTried, naiveOK, naiveChanged, naiveDistinct int
	for _, t := range slots {
		if t.counted {
			out.Jobs++
		}
		spanTried += t.spanTried
		spanOK += t.spanOK
		spanChanged += t.spanChanged
		spanDistinct += t.spanDistinct
		naiveTried += t.naiveTried
		naiveOK += t.naiveOK
		naiveChanged += t.naiveChanged
		naiveDistinct += t.naiveDistinct
	}
	if spanTried > 0 {
		out.SpanCompiled = float64(spanOK) / float64(spanTried)
		out.SpanDistinct = 100 * float64(spanDistinct) / float64(spanTried)
	}
	if spanOK > 0 {
		out.SpanChanged = float64(spanChanged) / float64(spanOK)
	}
	if naiveTried > 0 {
		out.NaiveCompiled = float64(naiveOK) / float64(naiveTried)
		out.NaiveDistinct = 100 * float64(naiveDistinct) / float64(naiveTried)
	}
	if naiveOK > 0 {
		out.NaiveChanged = float64(naiveChanged) / float64(naiveOK)
	}
	return out, nil
}

// Render prints the comparison.
func (a *AblationSpanSearch) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation (§5.1-5.2): span-guided vs naive configuration search, workload %s (%d jobs)\n", a.Workload, a.Jobs)
	fmt.Fprintf(w, "  %-22s %10s %14s %22s\n", "policy", "compiled", "plan-changed", "distinct plans/100cfg")
	fmt.Fprintf(w, "  %-22s %9.0f%% %13.0f%% %21.1f\n", "span-guided", 100*a.SpanCompiled, 100*a.SpanChanged, a.SpanDistinct)
	fmt.Fprintf(w, "  %-22s %9.0f%% %13.0f%% %21.1f\n", "all 219 rules", 100*a.NaiveCompiled, 100*a.NaiveChanged, a.NaiveDistinct)
}

// AblationGrouping compares the two granularities §6.4 weighs for
// extrapolation: recurring-template groups versus rule-signature job groups.
// Signature groups are far fewer and larger, which is what makes learning per
// group feasible ("there are tens of thousands of such templates, often with
// just one or a handful of jobs in each").
type AblationGrouping struct {
	Workload string
	Days     int
	Jobs     int

	TemplateGroups  int
	SignatureGroups int
	// Median and maximum group sizes under each granularity.
	TemplateMedian, TemplateMax   int
	SignatureMedian, SignatureMax int
}

// Grouping computes the comparison over a window of days.
func (r *Runner) Grouping(name string, days int) (*AblationGrouping, error) {
	h := r.Harness(name)
	var jobs []*workload.Job
	for d := 0; d < days; d++ {
		jobs = append(jobs, r.Day(name, d)...)
	}
	byTemplate := make(map[uint64]int)
	for _, j := range jobs {
		byTemplate[j.TemplateHash]++
	}
	grouper := steering.NewGrouper(h)
	groups, err := grouper.Group(jobs)
	if err != nil {
		return nil, err
	}
	out := &AblationGrouping{
		Workload:        name,
		Days:            days,
		Jobs:            len(jobs),
		TemplateGroups:  len(byTemplate),
		SignatureGroups: len(groups),
	}
	var tSizes []int
	for _, n := range byTemplate {
		tSizes = append(tSizes, n)
	}
	sort.Ints(tSizes)
	out.TemplateMedian, out.TemplateMax = medianMax(tSizes)
	var sSizes []int
	for _, g := range groups {
		sSizes = append(sSizes, len(g.Jobs))
	}
	out.SignatureMedian, out.SignatureMax = medianMax(sSizes)
	return out, nil
}

func medianMax(sizes []int) (med, max int) {
	if len(sizes) == 0 {
		return 0, 0
	}
	// insertion sort; group-size lists are small
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes[len(sizes)/2], sizes[len(sizes)-1]
}

// Render prints the comparison.
func (a *AblationGrouping) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation (§6.4): extrapolation granularity, workload %s over %d days (%d jobs)\n", a.Workload, a.Days, a.Jobs)
	fmt.Fprintf(w, "  %-20s %8s %8s %8s\n", "granularity", "groups", "median", "max")
	fmt.Fprintf(w, "  %-20s %8d %8d %8d\n", "recurring template", a.TemplateGroups, a.TemplateMedian, a.TemplateMax)
	fmt.Fprintf(w, "  %-20s %8d %8d %8d\n", "rule signature", a.SignatureGroups, a.SignatureMedian, a.SignatureMax)
}
