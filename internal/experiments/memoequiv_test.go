package experiments

import (
	"testing"

	"steerq/internal/bitvec"
)

// TestHashedInternMatchesLegacy is the memo-equivalence golden test for the
// hashed interning path: every example job compiled under both the hashed
// memo index and the retired string-key path (Optimizer.LegacyIntern) must
// produce identical memos and plans — same group count, same expression
// count, same cost, same rule signature, same rendered physical plan. The two
// paths differ only in how structural identity is looked up, so any
// divergence is an interning bug (a missed duplicate or a false merge).
func TestHashedInternMatchesLegacy(t *testing.T) {
	r := NewRunner(tinyConfig())
	const wl = "A"
	jobs := r.Day(wl, 0)
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	if len(jobs) > 20 {
		jobs = jobs[:20]
	}
	opt := r.Harness(wl).Opt
	legacy := *opt
	legacy.LegacyIntern = true
	cfg := opt.Rules.DefaultConfig()
	// A second, sparser configuration exercises rule-dependent memo shapes.
	sparse := cfg
	for id := 0; id < bitvec.Width; id += 7 {
		sparse.Clear(id)
	}

	for _, j := range jobs {
		for ci, c := range []bitvec.Vector{cfg, sparse} {
			got, gotErr := opt.Optimize(j.Root, c)
			want, wantErr := legacy.Optimize(j.Root, c)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s cfg%d: hashed err %v, legacy err %v", j.ID, ci, gotErr, wantErr)
			}
			if gotErr != nil {
				continue // both failed identically (e.g. no plan under sparse cfg)
			}
			if got.Groups != want.Groups || got.Exprs != want.Exprs {
				t.Errorf("%s cfg%d: memo size (%d groups, %d exprs) vs legacy (%d, %d)",
					j.ID, ci, got.Groups, got.Exprs, want.Groups, want.Exprs)
			}
			if got.Cost != want.Cost {
				t.Errorf("%s cfg%d: cost %v vs legacy %v", j.ID, ci, got.Cost, want.Cost)
			}
			if !got.Signature.Equal(want.Signature) {
				t.Errorf("%s cfg%d: signature %v vs legacy %v", j.ID, ci, got.Signature, want.Signature)
			}
			if gp, wp := got.Plan.String(), want.Plan.String(); gp != wp {
				t.Errorf("%s cfg%d: plans diverge\nhashed:\n%s\nlegacy:\n%s", j.ID, ci, gp, wp)
			}
		}
	}
}
