package experiments

import (
	"bytes"
	"strings"
	"testing"

	"steerq/internal/learning"
)

// tinyConfig keeps test runs fast while exercising every experiment path.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.Candidates = 60
	cfg.ExecutePerJob = 6
	cfg.SampleFrac = 0.3
	cfg.LongJobFloor = 60
	cfg.LongJobCeil = 5400
	return cfg
}

func TestTablesSmoke(t *testing.T) {
	r := NewRunner(tinyConfig())
	var buf bytes.Buffer

	t1, err := r.Table1(0)
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	t1.Render(&buf)
	if t1.Total.Jobs == 0 {
		t.Fatal("table1: no jobs")
	}

	t2, err := r.Table2("A", 0)
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	t2.Render(&buf)
	total := 0
	for _, row := range t2.Rows {
		total += row.Rules
		if row.Unused > row.Rules {
			t.Errorf("table2: unused %d > rules %d for %s", row.Unused, row.Rules, row.Category)
		}
	}
	if total != 256 {
		t.Fatalf("table2: rule census %d, want 256", total)
	}

	t3, err := r.Table3(0)
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	t3.Render(&buf)
	for _, row := range t3.Rows {
		if row.Queries == 0 {
			t.Errorf("table3: workload %s analyzed no queries", row.Workload)
		}
		if row.DeltaPct > 0 {
			t.Errorf("table3: workload %s mean best-config change %+.1f%% should not be positive", row.Workload, row.DeltaPct)
		}
	}

	t4, err := r.Table4(0, 3)
	if err != nil {
		t.Fatalf("table4: %v", err)
	}
	t4.Render(&buf)
	if len(t4.Rows) == 0 {
		t.Fatal("table4: no RuleDiff rows")
	}

	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("render output incomplete")
	}
	t.Logf("\n%s", buf.String())
}

func TestFiguresSmoke(t *testing.T) {
	r := NewRunner(tinyConfig())
	var buf bytes.Buffer

	f2, err := r.Figure2("A", 0)
	if err != nil {
		t.Fatalf("figure2: %v", err)
	}
	f2.Render(&buf)
	if f2.RuntimeHist.Total == 0 {
		t.Fatal("figure2: empty runtime distribution")
	}
	if f2.LongJobContainers < f2.LongJobFrac {
		t.Errorf("figure2: long jobs should hold a disproportionate container share (frac=%.2f containers=%.2f)",
			f2.LongJobFrac, f2.LongJobContainers)
	}

	f3, err := r.Figure3("A", 0, 40)
	if err != nil {
		t.Fatalf("figure3: %v", err)
	}
	f3.Render(&buf)

	f4, err := r.Figure4("A", 0, 20)
	if err != nil {
		t.Fatalf("figure4: %v", err)
	}
	f4.Render(&buf)
	anyCheaper := false
	for _, row := range f4.Rows {
		if row.MinCost < row.DefaultCost {
			anyCheaper = true
		}
	}
	if !anyCheaper {
		t.Error("figure4: expected some recompiled plans with estimated cost below the default (the §5.3 paradox)")
	}

	f5, err := r.Figure5("A", 0)
	if err != nil {
		t.Fatalf("figure5: %v", err)
	}
	f5.Render(&buf)

	f6, err := r.Figure6("A", 0)
	if err != nil {
		t.Fatalf("figure6: %v", err)
	}
	f6.Render(&buf)
	improved := 0
	for _, c := range f6.Changes {
		if c.PctChange < 0 {
			improved++
		}
	}
	if improved*2 < len(f6.Changes) {
		t.Errorf("figure6: only %d/%d jobs improved; the paper finds improvements for a majority", improved, len(f6.Changes))
	}

	f7, err := r.Figure7("B", 0)
	if err != nil {
		t.Fatalf("figure7: %v", err)
	}
	f7.Render(&buf)

	f1, err := r.Figure1("A", 4, 65)
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	f1.Render(&buf)

	t.Logf("\n%s", buf.String())
}

func TestLearningSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment is slow")
	}
	cfg := tinyConfig()
	cfg.Scale = 0.003
	cfg.LearnMinGroup = 20
	cfg.LearnMinMedianSec = 15
	r := NewRunner(cfg)
	run, err := r.Learning("B", 8, 2)
	if err != nil {
		t.Fatalf("learning: %v", err)
	}
	var buf bytes.Buffer
	(&Table5{Run: run}).Render(&buf)
	(&Figure8{Run: run}).Render(&buf)
	t.Logf("\n%s", buf.String())
	if len(run.Groups) == 0 {
		t.Fatal("learning: no job groups selected")
	}
	for _, g := range run.Groups {
		def := g.Eval.Summarize(func(o learning.JobOutcome) float64 { return o.Default })
		best := g.Eval.Summarize(func(o learning.JobOutcome) float64 { return o.Best })
		if best.Mean > def.Mean {
			t.Errorf("group %d: oracle mean %.0f exceeds default mean %.0f", g.Index, best.Mean, def.Mean)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	r := NewRunner(tinyConfig())
	rvg, err := r.RandomVsGuided("A", 0, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	guided, random := 0, 0
	for _, row := range rvg.Rows {
		if row.GuidedBest > row.DefaultRT {
			t.Errorf("%s: guided best %v above default %v", row.Job, row.GuidedBest, row.DefaultRT)
		}
		if row.GuidedBest < row.RandomBest*0.99 {
			guided++
		} else if row.RandomBest < row.GuidedBest*0.99 {
			random++
		}
	}
	if guided < random {
		t.Errorf("random selection beat guided (%d vs %d) — §6.2 expects the cost signal to win", random, guided)
	}

	ss, err := r.SpanSearch("A", 0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ss.SpanDistinct < ss.NaiveDistinct {
		t.Errorf("span-guided search less efficient than naive: %.1f vs %.1f distinct plans/100",
			ss.SpanDistinct, ss.NaiveDistinct)
	}

	gr, err := r.Grouping("B", 3)
	if err != nil {
		t.Fatal(err)
	}
	if gr.SignatureGroups > gr.TemplateGroups {
		t.Errorf("signature groups (%d) should be coarser than template groups (%d)",
			gr.SignatureGroups, gr.TemplateGroups)
	}
	if gr.SignatureMax < gr.TemplateMax {
		t.Errorf("largest signature group (%d) smaller than largest template group (%d)",
			gr.SignatureMax, gr.TemplateMax)
	}
	var buf bytes.Buffer
	rvg.Render(&buf)
	ss.Render(&buf)
	gr.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestExtensionsSmoke(t *testing.T) {
	r := NewRunner(tinyConfig())
	e, err := r.Extensions("A", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Iterative) == 0 || len(e.Independence) == 0 {
		t.Fatalf("extensions produced %d/%d rows", len(e.Iterative), len(e.Independence))
	}
	for _, row := range e.Iterative {
		if row.OneShotBest > row.DefaultRT+1e-9 || row.IterativeBest > row.DefaultRT+1e-9 {
			t.Fatalf("%s: a best exceeds the default: %+v", row.Job, row)
		}
	}
	for _, row := range e.Independence {
		if row.PartSpace > row.NaiveSpace {
			t.Fatalf("%s: partitioned space exceeds naive: %+v", row.Job, row)
		}
		if row.Groups < 1 || row.Groups > row.SpanSize {
			t.Fatalf("%s: nonsense group count: %+v", row.Job, row)
		}
	}
	var buf bytes.Buffer
	e.Render(&buf)
	t.Logf("\n%s", buf.String())
}

// TestCheckedPlansSmoke runs a small day end-to-end with STEERQ_CHECK_PLANS
// set: every plan the harness executes passes cascades.Validate or the run
// panics. This is the acceptance gate for the validator's invariants against
// real optimizer output.
func TestCheckedPlansSmoke(t *testing.T) {
	t.Setenv("STEERQ_CHECK_PLANS", "1")
	cfg := tinyConfig()
	cfg.CheckPlans = true
	r := NewRunner(cfg)
	if !r.Executor("A").CheckPlans {
		t.Fatal("harness executor did not pick up CheckPlans")
	}
	jobs := r.Day("A", 0)
	if len(jobs) == 0 {
		t.Fatal("empty day")
	}
	if len(jobs) > 25 {
		jobs = jobs[:25]
	}
	for _, j := range jobs {
		tr := r.DefaultTrial("A", j)
		if tr.Metrics.RuntimeSec <= 0 {
			t.Fatalf("job %s: bad checked trial %+v", j.ID, tr.Metrics)
		}
	}
}
