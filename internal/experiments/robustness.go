package experiments

import (
	"fmt"
	"io"

	"steerq/internal/faults"
)

// RobustnessReport summarizes how a workload's pipeline run survived
// injected faults: what the injector threw at it (Stats) and what the
// retry/timeout/fallback machinery did about it (Record). With every number
// derived from content-keyed streams and serial merges, the report is
// byte-identical at any worker count for a given fault seed.
type RobustnessReport struct {
	Workload string
	// Plan is the injection configuration the run used.
	Plan faults.Plan
	// Stats counts the faults the shared injector actually injected. The
	// injector is shared across workloads, so these are run-wide totals.
	Stats faults.Stats
	// Record tallies the workload's fault handling: retries, timeouts,
	// corrupted compiles caught by validation, fallbacks to the default
	// configuration and given-up jobs.
	Record faults.Record
	// Analyses is how many job analyses completed for the workload.
	Analyses int
}

// RobustnessFor snapshots the robustness report of one workload. Meaningful
// after AnalyzedJobs (or any experiment built on it) has run; all zeros when
// fault injection is off.
func (r *Runner) RobustnessFor(name string) RobustnessReport {
	return RobustnessReport{
		Workload: name,
		Plan:     r.Faults().Plan(),
		Stats:    r.Faults().Stats(),
		Record:   *r.Robustness(name),
		Analyses: len(r.analyses[name]),
	}
}

// Render prints the report.
func (rep RobustnessReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Robustness (workload %s, fault seed %d)\n", rep.Workload, rep.Plan.Seed)
	fmt.Fprintf(w, "  injected: %d of %d decisions (fail=%d hang=%d corrupt=%d)\n",
		rep.Stats.Injected(), rep.Stats.Decisions, rep.Stats.Fails, rep.Stats.Hangs, rep.Stats.Corrupts)
	fmt.Fprintf(w, "  analyses: %d completed, %d given up\n", rep.Analyses, rep.Record.GiveUps)
	fmt.Fprintf(w, "  retries:  %d compile + %d exec (virtual backoff %v)\n",
		rep.Record.CompileRetries, rep.Record.ExecRetries, rep.Record.Backoff)
	fmt.Fprintf(w, "  caught:   %d timeouts, %d corrupted plans\n", rep.Record.Timeouts, rep.Record.Corruptions)
	fmt.Fprintf(w, "  fallbacks to default config: %d\n", rep.Record.Fallbacks)
}
