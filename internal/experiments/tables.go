package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/steering"
	"steerq/internal/workload"
)

// Table1 reproduces Table 1: per-workload daily job, template, input and
// rule-signature counts.
type Table1 struct {
	Rows  []Table1Row
	Total Table1Row
}

// Table1Row is one workload column of Table 1.
type Table1Row struct {
	Workload         string
	Jobs             int
	UniqueTemplates  int
	UniqueInputs     int
	UniqueSignatures int
}

// Table1 computes the statistics over one generated day of each workload.
func (r *Runner) Table1(day int) (*Table1, error) {
	out := &Table1{Total: Table1Row{Workload: "Total"}}
	for _, name := range []string{"A", "B", "C"} {
		jobs := r.Day(name, day)
		st := workload.DayStats(jobs)
		sigs, err := r.UniqueSignatures(name, jobs)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Workload:         name,
			Jobs:             st.Jobs,
			UniqueTemplates:  st.UniqueTemplates,
			UniqueInputs:     st.UniqueInputs,
			UniqueSignatures: sigs,
		}
		out.Rows = append(out.Rows, row)
		out.Total.Jobs += row.Jobs
		out.Total.UniqueTemplates += row.UniqueTemplates
		out.Total.UniqueInputs += row.UniqueInputs
		out.Total.UniqueSignatures += row.UniqueSignatures
	}
	return out, nil
}

// Render prints the table.
func (t *Table1) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1: generated workloads (one day, scaled)\n")
	fmt.Fprintf(w, "%-24s %8s %8s %8s %8s\n", "", "A", "B", "C", "Total")
	rows := append(append([]Table1Row(nil), t.Rows...), t.Total)
	get := func(f func(Table1Row) int) []string {
		var out []string
		for _, r := range rows {
			out = append(out, fmt.Sprint(f(r)))
		}
		return out
	}
	p := func(label string, vals []string) {
		fmt.Fprintf(w, "%-24s %8s %8s %8s %8s\n", label, vals[0], vals[1], vals[2], vals[3])
	}
	p("# Jobs", get(func(r Table1Row) int { return r.Jobs }))
	p("# Unique Templates", get(func(r Table1Row) int { return r.UniqueTemplates }))
	p("# Unique Inputs", get(func(r Table1Row) int { return r.UniqueInputs }))
	p("# Unique rule signature", get(func(r Table1Row) int { return r.UniqueSignatures }))
}

// Table2 reproduces Table 2: the rule category census plus how many rules of
// each category went unused across one day of Workload A.
type Table2 struct {
	Rows []Table2Row
}

// Table2Row is one category row.
type Table2Row struct {
	Category cascades.Category
	Rules    int
	Unused   int
	Examples []string
}

// Table2 measures rule usage across a day of the given workload. Unlike the
// pipeline (which always compares against the default configuration, §4),
// the usage census compiles every job under its *submitted* configuration:
// the paper's production logs include customer jobs whose hints enable
// off-by-default rules, which is how those rules show usage in its Table 2.
func (r *Runner) Table2(name string, day int) (*Table2, error) {
	h := r.Harness(name)
	rs := h.Opt.Rules
	def := rs.DefaultConfig()
	used := bitvec.Vector{}
	for _, j := range r.Day(name, day) {
		res, err := h.Opt.Optimize(j.Root, j.SubmittedConfig(def))
		if err != nil {
			continue // hinted configurations can fail to compile (§4)
		}
		used = used.Or(res.Signature)
	}
	out := &Table2{}
	examples := map[cascades.Category][]string{
		cascades.Required:       {"EnforceExchange", "BuildOutput", "GetToRange", "SelectToFilter"},
		cascades.OffByDefault:   {"CorrelatedJoinOnUnionAll1", "GroupbyOnJoin"},
		cascades.OnByDefault:    {"CollapseSelects", "SelectPredNormalized", "GroupbyBelowUnionAll"},
		cascades.Implementation: {"HashJoinImpl1", "JoinToApplyIndex1", "UnionAllToVirtualDataset"},
	}
	for _, cat := range []cascades.Category{cascades.Required, cascades.OffByDefault, cascades.OnByDefault, cascades.Implementation} {
		row := Table2Row{Category: cat, Examples: examples[cat]}
		for _, ri := range rs.Infos() {
			if ri.Category != cat {
				continue
			}
			row.Rules++
			if !used.Get(ri.ID) {
				row.Unused++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table.
func (t *Table2) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: rule categories over one day (submitted-configuration usage)\n")
	fmt.Fprintf(w, "%-16s %7s %8s  %s\n", "Category", "#Rules", "#Unused", "Examples")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-16s %7d %8d  %s\n", r.Category, r.Rules, r.Unused, strings.Join(r.Examples, ", "))
	}
}

// Table3 reproduces Table 3: average runtime change when always choosing the
// best known configuration (including the default) for the analyzed jobs.
type Table3 struct {
	Rows []Table3Row
}

// Table3Row is one workload column.
type Table3Row struct {
	Workload   string
	Queries    int
	DeltaSec   float64 // mean (best - default), negative is better
	DeltaPct   float64 // mean percentage change
	MaxPctGain float64 // most negative percentage change observed
}

// Table3 derives the summary from the pipeline analyses of each workload.
func (r *Runner) Table3(day int) (*Table3, error) {
	out := &Table3{}
	for _, name := range []string{"A", "B", "C"} {
		as := r.AnalyzedJobs(name, day)
		row := Table3Row{Workload: name}
		var sumSec, sumPct float64
		for _, a := range as {
			best := a.BestConfig(steering.MetricRuntime)
			d := best.Metrics.RuntimeSec - a.Default.Metrics.RuntimeSec
			pct := a.PercentChange(best, steering.MetricRuntime)
			sumSec += d
			sumPct += pct
			if pct < row.MaxPctGain {
				row.MaxPctGain = pct
			}
			row.Queries++
		}
		if row.Queries > 0 {
			row.DeltaSec = sumSec / float64(row.Queries)
			row.DeltaPct = sumPct / float64(row.Queries)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table.
func (t *Table3) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3: average runtime change with the best known configuration\n")
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "", "A", "B", "C")
	row := func(label string, f func(Table3Row) string) {
		vals := make([]string, len(t.Rows))
		for i, r := range t.Rows {
			vals[i] = f(r)
		}
		fmt.Fprintf(w, "%-16s %10s %10s %10s\n", label, vals[0], vals[1], vals[2])
	}
	row("# Queries", func(r Table3Row) string { return fmt.Sprint(r.Queries) })
	row("dRuntime", func(r Table3Row) string { return fmt.Sprintf("%+.0fs", r.DeltaSec) })
	row("dPercentage", func(r Table3Row) string { return fmt.Sprintf("%+.0f%%", r.DeltaPct) })
	row("best job", func(r Table3Row) string { return fmt.Sprintf("%+.0f%%", r.MaxPctGain) })
}

// Table4 reproduces Table 4: RuleDiffs of the best configurations found for
// sample jobs with large improvements.
type Table4 struct {
	Rows []Table4Row
}

// Table4Row is one sample job.
type Table4Row struct {
	Job         string
	PctChange   float64
	OnlyDefault []string
	OnlyBest    []string
}

// Table4 picks the top improving analyzed jobs per workload and reports their
// RuleDiffs.
func (r *Runner) Table4(day, perWorkload int) (*Table4, error) {
	out := &Table4{}
	for _, name := range []string{"A", "B"} {
		h := r.Harness(name)
		as := r.AnalyzedJobs(name, day)
		type scored struct {
			a   *steering.Analysis
			pct float64
		}
		var sc []scored
		for _, a := range as {
			best := a.BestAlternative(steering.MetricRuntime)
			if best == nil {
				continue
			}
			sc = append(sc, scored{a, a.PercentChange(best, steering.MetricRuntime)})
		}
		sort.Slice(sc, func(i, j int) bool { return sc[i].pct < sc[j].pct })
		for i := 0; i < perWorkload && i < len(sc); i++ {
			a := sc[i].a
			best := a.BestAlternative(steering.MetricRuntime)
			diff := steering.Diff(a.Default.Signature, best.Signature)
			out.Rows = append(out.Rows, Table4Row{
				Job:         fmt.Sprintf("Q_%s%d (%s)", name, i+1, a.Job.ID),
				PctChange:   sc[i].pct,
				OnlyDefault: ruleNames(h.Opt.Rules, diff.OnlyDefault),
				OnlyBest:    ruleNames(h.Opt.Rules, diff.OnlyNew),
			})
		}
	}
	return out, nil
}

func ruleNames(rs *cascades.RuleSet, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if ri, ok := rs.Info(id); ok {
			out = append(out, ri.Name)
		} else {
			out = append(out, fmt.Sprintf("rule#%d", id))
		}
	}
	return out
}

// Render prints the table.
func (t *Table4) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 4: RuleDiff for sample jobs (best configuration vs default)\n")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-22s %+6.0f%%\n", r.Job, r.PctChange)
		fmt.Fprintf(w, "    only in default plan: %s\n", capList(r.OnlyDefault, 4))
		fmt.Fprintf(w, "    only in best plan:    %s\n", capList(r.OnlyBest, 4))
	}
}

func capList(names []string, n int) string {
	if len(names) == 0 {
		return "-"
	}
	if len(names) <= n {
		return strings.Join(names, ", ")
	}
	return fmt.Sprintf("%s, %d more rules", strings.Join(names[:n], ", "), len(names)-n)
}
