package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("x", []float64{0, 10, 100, 1000}, []float64{1, 5, 9, 10, 50, 999, 1000, 5000})
	if h.Total != 8 {
		t.Fatalf("total %d", h.Total)
	}
	// 1,5,9 -> bucket 0; 10,50 -> bucket 1; 999,1000,5000 -> bucket 2 (last
	// bucket absorbs the top edge and beyond).
	want := []int{3, 2, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	var buf bytes.Buffer
	h.Render(&buf)
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("histogram render has no bars")
	}
}

func TestMeanStd(t *testing.T) {
	// Three jobs, but only two have values for this category: the third
	// counts as zero.
	mean, std := meanStd([]float64{3, 3}, 3)
	if math.Abs(mean-2) > 1e-9 {
		t.Fatalf("mean %v, want 2", mean)
	}
	if math.Abs(std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std %v, want sqrt(2)", std)
	}
	if m, s := meanStd(nil, 0); m != 0 || s != 0 {
		t.Fatalf("empty meanStd = %v, %v", m, s)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(tinyConfig())
	w1 := r.Workload("A")
	w2 := r.Workload("A")
	if w1 != w2 {
		t.Fatal("workload rebuilt")
	}
	d1 := r.Day("A", 0)
	d2 := r.Day("A", 0)
	if &d1[0] != &d2[0] {
		t.Fatal("day regenerated")
	}
	j := d1[0]
	t1 := r.DefaultTrial("A", j)
	t2 := r.DefaultTrial("A", j)
	if t1.Metrics != t2.Metrics {
		t.Fatal("default trial not memoized")
	}
}

func TestRunnerUnknownWorkloadPanics(t *testing.T) {
	r := NewRunner(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload accepted")
		}
	}()
	r.Workload("Z")
}

func TestLongJobsWindow(t *testing.T) {
	cfg := tinyConfig()
	cfg.LongJobFloor = 30
	cfg.LongJobCeil = 600
	r := NewRunner(cfg)
	for _, j := range r.LongJobs("A", 0) {
		rt := r.DefaultTrial("A", j).Metrics.RuntimeSec
		if rt < 30 || rt > 600 {
			t.Fatalf("job %s runtime %v outside window", j.ID, rt)
		}
	}
}
