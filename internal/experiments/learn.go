package experiments

import (
	"fmt"
	"io"
	"sort"

	"steerq/internal/learning"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// LearningRun is the shared substrate of Table 5 and Figure 8: per-job-group
// datasets, trained models and test-set evaluations (§7.4).
type LearningRun struct {
	Groups []LearnedGroup
}

// LearnedGroup is one job group's learning outcome.
type LearnedGroup struct {
	Index int
	Size  int // total jobs collected
	Arms  int
	Eval  learning.Evaluation
}

// Learning reproduces §7: it selects the largest rule-signature job groups of
// the workload across a window of days, discovers candidate arms with the
// pipeline on a few base jobs, collects runtimes of every arm for every job,
// trains a per-group model and evaluates it on the held-out test split.
func (r *Runner) Learning(name string, days, nGroups int) (*LearningRun, error) {
	h := r.Harness(name)
	var jobs []*workload.Job
	for d := 0; d < days; d++ {
		jobs = append(jobs, r.Day(name, d)...)
	}
	grouper := steering.NewGrouper(h)
	groups, err := grouper.Group(jobs)
	if err != nil {
		return nil, err
	}

	// Keep groups whose jobs are worth optimizing (the paper's groups run
	// thousands of seconds): median default runtime above a floor, enough
	// members for a 40/20/40 split to mean something.
	minGroup := r.Cfg.LearnMinGroup
	if minGroup == 0 {
		minGroup = 30
	}
	minMedian := r.Cfg.LearnMinMedianSec
	if minMedian == 0 {
		minMedian = 60
	}
	var selected []*steering.JobGroup
	for _, g := range groups {
		if len(selected) == nGroups {
			break
		}
		if len(g.Jobs) < minGroup {
			continue
		}
		med := r.medianDefaultRuntime(name, g.Jobs)
		if med < minMedian {
			continue
		}
		selected = append(selected, g)
	}

	run := &LearningRun{}
	p := r.Pipeline(name)
	rnd := xrand.New(r.Cfg.Seed).Derive("learning", name)
	for gi, g := range selected {
		arms, err := learning.CandidateArms(p, g.Jobs, 3, 10)
		if err != nil {
			return nil, err
		}
		members := g.Jobs
		if len(members) > 250 {
			members = members[:250]
		}
		ds := learning.Collect(h, g.Signature, members, arms)
		if len(ds.Examples) < 20 {
			continue
		}
		split := learning.NewSplit(len(ds.Examples), rnd.Derive("split", fmt.Sprint(gi)))
		model := learning.Train(ds, split, learning.DefaultTrainOptions(), rnd.Derive("model", fmt.Sprint(gi)))
		ev := learning.Evaluate(model, ds, split.Test)
		run.Groups = append(run.Groups, LearnedGroup{
			Index: gi + 1,
			Size:  len(ds.Examples),
			Arms:  len(arms),
			Eval:  ev,
		})
		r.logf("learning group %d: %d jobs, %d arms, %d test jobs", gi+1, len(ds.Examples), len(arms), len(ev.PerJob))
	}
	return run, nil
}

func (r *Runner) medianDefaultRuntime(name string, jobs []*workload.Job) float64 {
	var rts []float64
	for _, j := range jobs {
		t := r.DefaultTrial(name, j)
		if t.Err == nil {
			rts = append(rts, t.Metrics.RuntimeSec)
		}
	}
	if len(rts) == 0 {
		return 0
	}
	sort.Float64s(rts)
	return rts[len(rts)/2]
}

// Table5 renders the learning run as Table 5: mean/90P/99P runtimes per group
// under the best (oracle), default and learned policies.
type Table5 struct {
	Run *LearningRun
}

// Render prints the table.
func (t *Table5) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 5: runtimes (seconds) per job group under Best/Default/Learned\n")
	fmt.Fprintf(w, "%-9s", "")
	for _, g := range t.Run.Groups {
		fmt.Fprintf(w, " | group %d (n=%d, K=%d)           ", g.Index, g.Size, g.Arms)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-9s", "")
	for range t.Run.Groups {
		fmt.Fprintf(w, " | %9s %9s %9s", "Mean", "90P", "99P")
	}
	fmt.Fprintln(w)
	row := func(label string, get func(learning.JobOutcome) float64) {
		fmt.Fprintf(w, "%-9s", label)
		for _, g := range t.Run.Groups {
			s := g.Eval.Summarize(get)
			fmt.Fprintf(w, " | %9.0f %9.0f %9.0f", s.Mean, s.P90, s.P99)
		}
		fmt.Fprintln(w)
	}
	row("Best", func(o learning.JobOutcome) float64 { return o.Best })
	row("Default", func(o learning.JobOutcome) float64 { return o.Default })
	row("Learned", func(o learning.JobOutcome) float64 { return o.Learned })
}

// Figure8 renders the learning run as Figure 8: per-test-job runtime change
// (seconds and percent) of the learned choice versus the default.
type Figure8 struct {
	Run *LearningRun
}

// Render prints per-group job series.
func (f *Figure8) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: learned model vs default per unseen test job (negative = faster)\n")
	for _, g := range f.Run.Groups {
		fmt.Fprintf(w, "job group %d:\n", g.Index)
		improved, regressed, same := 0, 0, 0
		for _, o := range g.Eval.PerJob {
			d := o.Learned - o.Default
			pct := 0.0
			if o.Default > 0 {
				pct = 100 * d / o.Default
			}
			switch {
			case pct < -1:
				improved++
			case pct > 1:
				regressed++
			default:
				same++
			}
			fmt.Fprintf(w, "  %-14s arm=%d  d=%+8.0fs  (%+6.1f%%)\n", o.Job.ID, o.Arm, d, pct)
		}
		fmt.Fprintf(w, "  summary: %d improved, %d regressed, %d unchanged\n", improved, regressed, same)
	}
}
