package experiments

import (
	"bytes"
	"testing"

	"steerq/internal/faults"
	"steerq/internal/steering"
)

func faultyRunner(workers int, fp faults.Plan) *Runner {
	cfg := tinyConfig()
	cfg.Workers = workers
	cfg.CheckPlans = true
	cfg.Faults = &fp
	return NewRunner(cfg)
}

func requireSameAnalyses(t *testing.T, label string, as, bs []*steering.Analysis) {
	t.Helper()
	if len(as) != len(bs) {
		t.Fatalf("%s: %d vs %d analyses", label, len(as), len(bs))
	}
	for i := range as {
		a, b := as[i], bs[i]
		if a.Job.ID != b.Job.ID {
			t.Fatalf("%s: analysis %d is for job %s vs %s", label, i, a.Job.ID, b.Job.ID)
		}
		if !a.Span.Equal(b.Span) {
			t.Fatalf("%s: job %s span differs", label, a.Job.ID)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("%s: job %s candidates %d vs %d", label, a.Job.ID, len(a.Candidates), len(b.Candidates))
		}
		for c := range a.Candidates {
			if a.Candidates[c] != b.Candidates[c] {
				t.Fatalf("%s: job %s candidate %d differs", label, a.Job.ID, c)
			}
		}
		if len(a.Trials) != len(b.Trials) {
			t.Fatalf("%s: job %s trials %d vs %d", label, a.Job.ID, len(a.Trials), len(b.Trials))
		}
		for k := range a.Trials {
			ta, tb := a.Trials[k], b.Trials[k]
			if ta.Config != tb.Config || ta.Signature != tb.Signature || ta.Metrics != tb.Metrics ||
				ta.Attempts != tb.Attempts || ta.FellBack != tb.FellBack {
				t.Fatalf("%s: job %s trial %d differs: %+v vs %+v", label, a.Job.ID, k, ta, tb)
			}
		}
		if a.Robustness != b.Robustness {
			t.Fatalf("%s: job %s robustness %+v vs %+v", label, a.Job.ID, a.Robustness, b.Robustness)
		}
	}
}

// TestRunnerFaultDeterminism is the end-to-end acceptance property: a full
// AnalyzedJobs run with a pinned fault seed — sampling, spans, candidates,
// executed trials, retry/fallback accounting, and the rendered robustness
// report — is byte-identical at Workers=1 and Workers=8. Run under -race it
// also exercises the shared injector and compile cache concurrently.
func TestRunnerFaultDeterminism(t *testing.T) {
	fp := faults.DefaultPlan(1337)
	base := faultyRunner(1, fp)
	baseAnalyses := base.AnalyzedJobs("A", 0)
	if len(baseAnalyses) == 0 {
		t.Fatal("no analyses; test is vacuous")
	}
	if base.Robustness("A").IsZero() {
		t.Fatal("fault plan injected nothing the pipeline had to handle; test is vacuous")
	}

	par := faultyRunner(8, fp)
	parAnalyses := par.AnalyzedJobs("A", 0)
	requireSameAnalyses(t, "workers=8", baseAnalyses, parAnalyses)

	if *base.Robustness("A") != *par.Robustness("A") {
		t.Fatalf("robustness records differ: %+v vs %+v", *base.Robustness("A"), *par.Robustness("A"))
	}
	var w1, w8 bytes.Buffer
	base.RobustnessFor("A").Render(&w1)
	par.RobustnessFor("A").Render(&w8)
	if w1.String() != w8.String() {
		t.Fatalf("rendered reports differ:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", w1.String(), w8.String())
	}
}

// TestRunnerFaultedJobsAllResolve checks graceful degradation end to end:
// with moderate fault rates every analysis the runner returns has every
// executed trial either retried into success or marked as a fallback copy of
// the default — no injected error escapes to experiment code. CheckPlans
// makes the executor panic on any corrupt plan that slipped through.
func TestRunnerFaultedJobsAllResolve(t *testing.T) {
	r := faultyRunner(4, faults.DefaultPlan(2024))
	analyses := r.AnalyzedJobs("A", 0)
	if len(analyses) == 0 {
		t.Fatal("every job failed analysis")
	}
	fallbacks := 0
	for _, a := range analyses {
		for i, tr := range a.Trials {
			if tr.Err != nil {
				t.Fatalf("job %s trial %d surfaced error %v", a.Job.ID, i, tr.Err)
			}
			if tr.FellBack {
				fallbacks++
				if tr.Metrics != a.Default.Metrics {
					t.Fatalf("job %s trial %d fell back but is not the default's metrics", a.Job.ID, i)
				}
			}
		}
	}
	rec := r.Robustness("A")
	if rec.Retries() == 0 {
		t.Fatalf("no retries recorded under injection: %+v", *rec)
	}
	if fallbacks != rec.Fallbacks {
		t.Fatalf("record counts %d fallbacks, trials show %d", rec.Fallbacks, fallbacks)
	}
	rep := r.RobustnessFor("A")
	if rep.Stats.Injected() == 0 {
		t.Fatal("injector reports nothing injected; rates too low for this test")
	}
	if rep.Analyses != len(analyses) {
		t.Fatalf("report counts %d analyses, runner returned %d", rep.Analyses, len(analyses))
	}
}

// TestRunnerGiveUpCountedOnce: a job whose analysis fails even after retries
// is given up, logged, counted once — and not recomputed when the same day is
// requested again.
func TestRunnerGiveUpCountedOnce(t *testing.T) {
	// All compiles fail: LongJobs is empty (default trials all error), and
	// forcing an analysis through the pipeline gives up.
	r := faultyRunner(2, faults.Plan{Seed: 9, Compile: faults.Probs{Fail: 1}})
	if jobs := r.LongJobs("A", 0); len(jobs) != 0 {
		t.Fatalf("%d jobs survived an all-fail compile plan", len(jobs))
	}
	a := r.AnalyzedJobs("A", 0)
	if len(a) != 0 {
		t.Fatalf("AnalyzedJobs returned %d analyses under an all-fail plan", len(a))
	}
	// Nothing reached the pipeline (no long jobs), so no give-ups — but the
	// injector must have been busy failing the default trials.
	if r.RobustnessFor("A").Stats.Fails == 0 {
		t.Fatal("no injected failures recorded")
	}
	if rec := r.Robustness("A"); rec.CompileRetries == 0 {
		t.Fatalf("default trials retried nothing: %+v", *rec)
	}
}
