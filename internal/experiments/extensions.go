package experiments

import (
	"fmt"
	"io"

	"steerq/internal/par"
	"steerq/internal/steering"
)

// ExtensionResults covers the two §8 future-work directions implemented in
// internal/steering: feedback-guided iterative search and rule-independence
// discovery.
type ExtensionResults struct {
	Workload string

	// Iterative search vs the one-shot pipeline, per job: best runtime
	// found under an equal execution budget.
	Iterative []IterativeRow

	// Independence probing, per job: span size, interaction groups, and
	// the configuration-space reduction.
	Independence []IndependenceRow
}

// IterativeRow compares one-shot and feedback-guided search on one job.
type IterativeRow struct {
	Job           string
	DefaultRT     float64
	OneShotBest   float64
	IterativeBest float64
}

// IndependenceRow summarizes one job's independence probe.
type IndependenceRow struct {
	Job          string
	SpanSize     int
	Groups       int
	NaiveSpace   float64
	PartSpace    float64
	Compilations int
}

// Extensions runs both future-work experiments over `jobs` long-running jobs.
func (r *Runner) Extensions(name string, day, jobs int) (*ExtensionResults, error) {
	p := r.Pipeline(name)
	rnd := r.sampleRand(name, "extensions")
	long := r.LongJobs(name, day)
	idx := rnd.Sample(len(long), jobs)
	out := &ExtensionResults{Workload: name}
	// One-shot baseline budget: 12 executions. Set once — the pipeline is
	// shared by the workers below.
	p.ExecutePerJob = 12
	type slot struct {
		it    IterativeRow
		ind   IndependenceRow
		hasIt bool
		// hasInd implies hasIt: independence probing runs only after the
		// iterative comparison succeeds, as in the serial loop.
		hasInd bool
	}
	slots, _ := par.Map(r.Cfg.Workers, idx, func(_, i int) (slot, error) {
		job := long[i]
		a, err := p.Recompile(job)
		if err != nil {
			return slot{}, nil
		}

		p.Execute(a)
		oneShot := a.Default.Metrics.RuntimeSec
		if alt := a.BestAlternative(steering.MetricRuntime); alt != nil && alt.Metrics.RuntimeSec < oneShot {
			oneShot = alt.Metrics.RuntimeSec
		}

		// Iterative: the same 12 executions split into 3 feedback rounds.
		fresh, err := p.Recompile(job)
		if err != nil {
			return slot{}, nil
		}
		it := steering.NewIterativeSearch(p)
		it.Rounds = 3
		it.PerRound = p.MaxCandidates / 3
		it.ExecutePerRound = 4
		res, err := it.Run(fresh)
		if err != nil {
			return slot{}, nil
		}
		iterative := a.Default.Metrics.RuntimeSec
		if res.Best != nil {
			iterative = res.Best.Runtime
		}
		s := slot{hasIt: true, it: IterativeRow{
			Job:           job.ID,
			DefaultRT:     a.Default.Metrics.RuntimeSec,
			OneShotBest:   oneShot,
			IterativeBest: iterative,
		}}

		ind, err := steering.ProbeIndependence(p, a, rnd.Derive("ind", job.ID))
		if err != nil {
			return s, nil
		}
		naive, part := ind.SearchSpace(a.Span.Count())
		s.hasInd = true
		s.ind = IndependenceRow{
			Job:          job.ID,
			SpanSize:     a.Span.Count(),
			Groups:       len(ind.Groups),
			NaiveSpace:   naive,
			PartSpace:    part,
			Compilations: ind.Compilations,
		}
		return s, nil
	})
	for _, s := range slots {
		if s.hasIt {
			out.Iterative = append(out.Iterative, s.it)
		}
		if s.hasInd {
			out.Independence = append(out.Independence, s.ind)
		}
	}
	return out, nil
}

// Render prints both comparisons.
func (e *ExtensionResults) Render(w io.Writer) {
	fmt.Fprintf(w, "Extension (§8): feedback-guided iterative search vs one-shot pipeline, workload %s\n", e.Workload)
	fmt.Fprintf(w, "  %-14s %10s %13s %15s\n", "job", "default", "one-shot best", "iterative best")
	itWins, osWins := 0, 0
	for _, r := range e.Iterative {
		fmt.Fprintf(w, "  %-14s %9.0fs %12.0fs %14.0fs\n", r.Job, r.DefaultRT, r.OneShotBest, r.IterativeBest)
		if r.IterativeBest < r.OneShotBest*0.99 {
			itWins++
		} else if r.OneShotBest < r.IterativeBest*0.99 {
			osWins++
		}
	}
	fmt.Fprintf(w, "  iterative better on %d jobs, one-shot on %d of %d (equal execution budget)\n",
		itWins, osWins, len(e.Iterative))

	fmt.Fprintf(w, "\nExtension (§8): rule-independence discovery, workload %s\n", e.Workload)
	fmt.Fprintf(w, "  %-14s %6s %8s %14s %14s %9s\n", "job", "span", "groups", "naive space", "partitioned", "compiles")
	for _, r := range e.Independence {
		fmt.Fprintf(w, "  %-14s %6d %8d %14.0f %14.0f %9d\n",
			r.Job, r.SpanSize, r.Groups, r.NaiveSpace, r.PartSpace, r.Compilations)
	}
}
