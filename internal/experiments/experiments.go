// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated stack. Each experiment returns a structured
// result with a Render method that prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured values.
//
// Absolute numbers differ from the paper (the substrate is a simulator at
// 1:100 scale, not Cosmos clusters); the reproduction targets are the
// *shapes*: who wins, by roughly what factor, and where crossovers fall.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/cost"
	"steerq/internal/exec"
	"steerq/internal/faults"
	"steerq/internal/obs"
	"steerq/internal/par"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// Config parameterizes a full experiment run.
type Config struct {
	// Seed roots all randomness.
	Seed uint64
	// Scale multiplies the paper's workload sizes (default 0.01 = 1:100).
	Scale float64
	// Candidates is M, the recompiled configurations per analyzed job
	// (the paper uses up to 1000; the default here is 300).
	Candidates int
	// ExecutePerJob is the number of alternatives executed per selected
	// job (10 in the paper).
	ExecutePerJob int
	// SampleFrac is the fraction of long-running jobs the pipeline
	// analyzes (the paper samples 10-20%).
	SampleFrac float64
	// LongJobFloor/LongJobCeil bound "long-running" in seconds (the paper
	// filters to five minutes..one hour, §5.3).
	LongJobFloor, LongJobCeil float64
	// LearnMinGroup and LearnMinMedianSec gate which rule-signature job
	// groups the learning experiment (§7) trains on: a group needs enough
	// members for a 40/20/40 split and jobs long enough to be worth
	// optimizing.
	LearnMinGroup     int
	LearnMinMedianSec float64
	// Workers bounds the goroutines used for job analysis and candidate
	// recompilation. Zero resolves through STEERQ_WORKERS and then
	// GOMAXPROCS; every value produces bit-for-bit identical results.
	Workers int
	// ZipfSkew, when positive, switches every workload the runner builds
	// into the Zipf hot-template popularity mode (see
	// workload.Profile.ZipfSkew): template arrival rates follow a Zipf(s)
	// law over a seeded ranking instead of the two-tier heavy/normal mix.
	ZipfSkew float64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// CheckPlans validates every executed plan (cascades.Validate) before
	// running it. The STEERQ_CHECK_PLANS environment variable also enables
	// it, via exec.New.
	CheckPlans bool
	// Faults, when non-nil, arms deterministic fault injection on every
	// harness the runner builds: compiles and executions fail, hang or
	// return corrupted plans at the plan's probabilities, and the pipeline
	// retries, times out and falls back per the robustness machinery. The
	// same plan (same seed) reproduces the same faults at any Workers
	// value.
	Faults *faults.Plan
	// Obs, when non-nil, is the registry the runner wires through every
	// harness, optimizer, pipeline and cache it builds. Nil means the
	// runner builds its own on obs.ClockFromEnv (so STEERQ_VCLOCK freezes
	// span durations for byte-stable snapshots).
	Obs *obs.Registry
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              2021,
		Scale:             0.01,
		Candidates:        300,
		ExecutePerJob:     10,
		SampleFrac:        0.15,
		LongJobFloor:      300,
		LongJobCeil:       3600,
		LearnMinGroup:     30,
		LearnMinMedianSec: 60,
	}
}

// Runner caches workloads, harnesses and executed days across experiments so
// a full suite reuses work.
type Runner struct {
	Cfg Config

	workloads map[string]*workload.Workload
	harnesses map[string]*abtest.Harness
	days      map[string]map[int][]*workload.Job
	defaults  map[string]map[string]abtest.Trial // per workload: jobID -> default trial
	analyses  map[string]map[string]*steering.Analysis
	failed    map[string]map[string]bool        // per workload: jobID -> analysis gave up
	caches    map[string]*steering.CompileCache // per workload, shared by all its pipelines
	robust    map[string]*faults.Record         // per workload: fault-handling tallies
	injector  *faults.Injector                  // shared by every harness; nil when Cfg.Faults is nil
	armed     bool                              // injector has been built (it may legitimately be nil)
	obs       *obs.Registry                     // shared registry; built lazily by Obs()
}

// NewRunner builds a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale == 0 {
		cfg = DefaultConfig()
	}
	return &Runner{
		Cfg:       cfg,
		workloads: make(map[string]*workload.Workload),
		harnesses: make(map[string]*abtest.Harness),
		days:      make(map[string]map[int][]*workload.Job),
		defaults:  make(map[string]map[string]abtest.Trial),
		analyses:  make(map[string]map[string]*steering.Analysis),
		failed:    make(map[string]map[string]bool),
		caches:    make(map[string]*steering.CompileCache),
		robust:    make(map[string]*faults.Record),
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Cfg.Log != nil {
		fmt.Fprintf(r.Cfg.Log, format+"\n", args...)
	}
}

// Workload returns (building once) the named workload.
func (r *Runner) Workload(name string) *workload.Workload {
	if w, ok := r.workloads[name]; ok {
		return w
	}
	var p workload.Profile
	switch name {
	case "A":
		p = workload.ProfileA(r.Cfg.Scale, r.Cfg.Seed)
	case "B":
		p = workload.ProfileB(r.Cfg.Scale, r.Cfg.Seed)
	case "C":
		p = workload.ProfileC(r.Cfg.Scale, r.Cfg.Seed)
	default:
		// steerq:allow-panic — workload names come from the experiment table, not user input.
		panic("experiments: unknown workload " + name)
	}
	if r.Cfg.ZipfSkew > 0 {
		p = p.WithZipf(r.Cfg.ZipfSkew)
	}
	w := workload.Generate(p)
	r.workloads[name] = w
	return w
}

// Harness returns the A/B harness for a workload. With STEERQ_CHECK_PLANS
// set in the environment (or Config.CheckPlans), every plan the experiments
// execute is first run through cascades.Validate.
func (r *Runner) Harness(name string) *abtest.Harness {
	if h, ok := r.harnesses[name]; ok {
		return h
	}
	w := r.Workload(name)
	opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
	opt.SetObs(r.Obs())
	h := abtest.New(w.Cat, opt, r.Cfg.Seed+1)
	h.SetObs(r.Obs())
	if r.Cfg.CheckPlans {
		h.Executor.CheckPlans = true
	}
	if in := r.Faults(); in != nil {
		h.SetFaults(in)
	}
	r.harnesses[name] = h
	return h
}

// Obs returns the runner's shared observability registry, building it on
// first use from Cfg.Obs (or a fresh registry on obs.ClockFromEnv). Every
// harness, optimizer, pipeline, cache and injector the runner builds
// reports into it.
func (r *Runner) Obs() *obs.Registry {
	if r.obs == nil {
		if r.Cfg.Obs != nil {
			r.obs = r.Cfg.Obs
		} else {
			r.obs = obs.NewWithClock(obs.ClockFromEnv())
		}
	}
	return r.obs
}

// Faults returns the runner's shared fault injector, building it on first
// use from Cfg.Faults; nil when injection is off. One injector serves every
// workload so its decision counters cover the whole run.
func (r *Runner) Faults() *faults.Injector {
	if !r.armed {
		if r.Cfg.Faults != nil {
			r.injector = faults.NewInjector(*r.Cfg.Faults)
			r.injector.Publish(r.Obs())
		}
		r.armed = true
	}
	return r.injector
}

// Robustness returns the workload's fault-handling tally, accumulated
// serially by DefaultTrial and AnalyzedJobs. It is all zeros when injection
// is off.
func (r *Runner) Robustness(name string) *faults.Record {
	rec, ok := r.robust[name]
	if !ok {
		rec = &faults.Record{}
		r.robust[name] = rec
	}
	return rec
}

// Executor exposes the harness executor (for distribution experiments).
func (r *Runner) Executor(name string) *exec.Executor { return r.Harness(name).Executor }

// Day returns (generating once) the jobs of one day.
func (r *Runner) Day(name string, day int) []*workload.Job {
	if r.days[name] == nil {
		r.days[name] = make(map[int][]*workload.Job)
	}
	if jobs, ok := r.days[name][day]; ok {
		return jobs
	}
	jobs := r.Workload(name).Day(day)
	r.days[name][day] = jobs
	return jobs
}

// DefaultTrial compiles and executes a job under the default configuration,
// memoized per job ID.
func (r *Runner) DefaultTrial(name string, j *workload.Job) abtest.Trial {
	if r.defaults[name] == nil {
		r.defaults[name] = make(map[string]abtest.Trial)
	}
	if t, ok := r.defaults[name][j.ID]; ok {
		return t
	}
	h := r.Harness(name)
	t := h.RunConfigCtx(context.Background(), j.Root, h.Opt.Rules.DefaultConfig(), j.Day, j.ID+"/default", r.Robustness(name))
	r.defaults[name][j.ID] = t
	return t
}

// Pipeline returns a configured discovery pipeline for a workload. All
// pipelines of one workload share a compile cache, so recurring jobs and
// repeated experiments (Figure 1, extensions) skip identical recompilations.
func (r *Runner) Pipeline(name string) *steering.Pipeline {
	p := steering.NewPipeline(r.Harness(name), xrand.New(r.Cfg.Seed).Derive("pipeline", name))
	p.MaxCandidates = r.Cfg.Candidates
	p.ExecutePerJob = r.Cfg.ExecutePerJob
	p.Workers = r.Cfg.Workers
	p.Cache = r.Cache(name)
	p.Obs = r.Obs()
	return p
}

// Cache returns (building once) the workload's shared compile cache.
func (r *Runner) Cache(name string) *steering.CompileCache {
	if c, ok := r.caches[name]; ok {
		return c
	}
	c := steering.NewCompileCache()
	c.SetObs(r.Obs(), "workload", name)
	r.caches[name] = c
	return c
}

// CacheStats snapshots the workload's compile-cache counters.
func (r *Runner) CacheStats(name string) steering.CacheStats {
	return r.caches[name].Stats()
}

// LongJobs returns day-0 jobs whose default runtime falls inside the
// long-running window, with their default trials.
func (r *Runner) LongJobs(name string, day int) []*workload.Job {
	var out []*workload.Job
	for _, j := range r.Day(name, day) {
		t := r.DefaultTrial(name, j)
		if t.Err != nil {
			continue
		}
		rt := t.Metrics.RuntimeSec
		if rt >= r.Cfg.LongJobFloor && rt <= r.Cfg.LongJobCeil {
			out = append(out, j)
		}
	}
	return out
}

// AnalyzedJobs runs (and caches) the discovery pipeline over a sample of a
// day's long-running jobs — the shared substrate of Table 3/4 and Figures
// 6/7.
func (r *Runner) AnalyzedJobs(name string, day int) []*steering.Analysis {
	if r.analyses[name] == nil {
		r.analyses[name] = make(map[string]*steering.Analysis)
	}
	long := r.LongJobs(name, day)
	rnd := xrand.New(r.Cfg.Seed).Derive("select", name, fmt.Sprint(day))
	n := int(float64(len(long)) * r.Cfg.SampleFrac)
	if n < 24 {
		n = min(24, len(long))
	}
	idx := rnd.Sample(len(long), n)
	sort.Ints(idx)
	p := r.Pipeline(name)
	jobs := make([]*workload.Job, len(idx))
	for k, i := range idx {
		jobs[k] = long[i]
	}
	// Fan the uncached jobs out across workers; the analysis cache is only
	// read during the fan-out and only written in the serial merge below, so
	// results, cache contents and log order all match a Workers=1 run.
	if r.failed[name] == nil {
		r.failed[name] = make(map[string]bool)
	}
	type slot struct {
		a       *steering.Analysis
		err     error
		cached  bool
		skipped bool
	}
	slots, _ := par.Map(r.Cfg.Workers, jobs, func(k int, j *workload.Job) (slot, error) {
		if a, ok := r.analyses[name][j.ID]; ok {
			return slot{a: a, cached: true}, nil
		}
		if r.failed[name][j.ID] {
			return slot{skipped: true}, nil
		}
		a, err := p.AnalyzeCtx(context.Background(), j)
		return slot{a: a, err: err}, nil
	})
	rec := r.Robustness(name)
	out := make([]*steering.Analysis, 0, len(jobs))
	for k, j := range jobs {
		s := slots[k]
		if s.skipped {
			continue
		}
		if s.err != nil {
			// The job's analysis exhausted every retry even for the default
			// configuration; there is nothing to fall back to, so the
			// pipeline gives the job up (already logged and counted once).
			r.failed[name][j.ID] = true
			rec.GiveUps++
			r.logf("analyze %s: %v", j.ID, s.err)
			continue
		}
		if s.cached {
			out = append(out, s.a)
			continue
		}
		r.analyses[name][j.ID] = s.a
		rec.Add(s.a.Robustness)
		out = append(out, s.a)
		if rb := s.a.Robustness; rb.IsZero() {
			r.logf("analyzed %s: span=%d candidates=%d", j.ID, s.a.Span.Count(), len(s.a.Candidates))
		} else {
			r.logf("analyzed %s: span=%d candidates=%d retries=%d timeouts=%d corruptions=%d fallbacks=%d",
				j.ID, s.a.Span.Count(), len(s.a.Candidates), rb.Retries(), rb.Timeouts, rb.Corruptions, rb.Fallbacks)
		}
	}
	return out
}

// UniqueSignatures counts distinct default rule signatures over jobs.
func (r *Runner) UniqueSignatures(name string, jobs []*workload.Job) (int, error) {
	g := steering.NewGrouper(r.Harness(name))
	groups, err := g.Group(jobs)
	if err != nil {
		return 0, err
	}
	return len(groups), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Histogram is a generic bucketed count used by the figure renderers.
type Histogram struct {
	Label   string
	Edges   []float64 // len = buckets+1
	Counts  []int
	Total   int
	LogEdge bool
}

// NewHistogram buckets values into the given edges.
func NewHistogram(label string, edges []float64, values []float64) Histogram {
	h := Histogram{Label: label, Edges: edges, Counts: make([]int, len(edges)-1)}
	for _, v := range values {
		for b := 0; b < len(edges)-1; b++ {
			if v >= edges[b] && (v < edges[b+1] || b == len(edges)-2) {
				h.Counts[b]++
				break
			}
		}
		h.Total++
	}
	return h
}

// Render prints the histogram as rows with ASCII bars.
func (h Histogram) Render(w io.Writer) {
	maxN := 1
	for _, c := range h.Counts {
		if c > maxN {
			maxN = c
		}
	}
	for b := 0; b < len(h.Counts); b++ {
		bar := barString(h.Counts[b], maxN, 40)
		fmt.Fprintf(w, "  [%10.4g, %10.4g) %6d %s\n", h.Edges[b], h.Edges[b+1], h.Counts[b], bar)
	}
}

func barString(n, maxN, width int) string {
	if maxN <= 0 {
		return ""
	}
	k := n * width / maxN
	out := make([]byte, k)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// signatureKey formats a signature for map keys in experiment code.
func signatureKey(v bitvec.Vector) bitvec.Key { return v.Key() }
