package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"steerq/internal/bitvec"
)

// runAnalyzed runs AnalyzedJobs on a fresh Runner at the given worker count
// and returns the analyses plus the captured progress log.
func runAnalyzed(t *testing.T, workers int) ([]analysisSummary, string) {
	t.Helper()
	cfg := tinyConfig()
	cfg.Workers = workers
	var log bytes.Buffer
	cfg.Log = &log
	r := NewRunner(cfg)
	out := r.AnalyzedJobs("A", 0)
	if len(out) == 0 {
		t.Fatalf("workers=%d: no analyzed jobs; test is vacuous", workers)
	}
	sums := make([]analysisSummary, len(out))
	for i, a := range out {
		s := analysisSummary{
			job:        a.Job.ID,
			span:       a.Span,
			candidates: len(a.Candidates),
			defaultRT:  a.Default.Metrics.RuntimeSec,
		}
		for _, c := range a.Candidates {
			s.costSum += c.EstCost
		}
		for _, tr := range a.Trials {
			s.sigs = append(s.sigs, tr.Signature)
			s.runtimes = append(s.runtimes, tr.Metrics.RuntimeSec)
		}
		sums[i] = s
	}
	return sums, log.String()
}

type analysisSummary struct {
	job        string
	span       bitvec.Vector
	candidates int
	defaultRT  float64
	costSum    float64
	sigs       []bitvec.Vector
	runtimes   []float64
}

// TestAnalyzedJobsParallelDeterminism asserts the experiment substrate is
// bit-for-bit identical across worker counts, including the progress log.
func TestAnalyzedJobsParallelDeterminism(t *testing.T) {
	serial, serialLog := runAnalyzed(t, 1)
	for _, workers := range []int{2, 8} {
		parallel, parallelLog := runAnalyzed(t, workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d analyses vs %d serial", workers, len(parallel), len(serial))
		}
		for i := range serial {
			a, b := serial[i], parallel[i]
			if a.job != b.job || a.span != b.span || a.candidates != b.candidates ||
				a.defaultRT != b.defaultRT || a.costSum != b.costSum {
				t.Fatalf("workers=%d: analysis %d differs: %+v vs %+v", workers, i, a, b)
			}
			if len(a.sigs) != len(b.sigs) {
				t.Fatalf("workers=%d: analysis %d trial count differs", workers, i)
			}
			for j := range a.sigs {
				if a.sigs[j] != b.sigs[j] || a.runtimes[j] != b.runtimes[j] {
					t.Fatalf("workers=%d: analysis %d trial %d differs", workers, i, j)
				}
			}
		}
		if parallelLog != serialLog {
			t.Fatalf("workers=%d: progress log differs from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serialLog, parallelLog)
		}
	}
}

// TestZipfPipelineParallelDeterminism is the metamorphic acceptance test for
// the work-stealing scheduler on skewed traffic: a full pipeline run over the
// Zipf hot-template workload, rendered to bytes, must be identical at 1 and 8
// workers. The hot templates concentrate compiles on few footprints, which is
// exactly where stealing and the merge phase see the most traffic. Steals are
// deliberately absent from the rendering — they are schedule-dependent
// diagnostics — while the scheduler's Items and Merges counters are included
// because they must not depend on the worker count.
func TestZipfPipelineParallelDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		cfg := tinyConfig()
		cfg.Workers = workers
		cfg.ZipfSkew = 1.2
		var log bytes.Buffer
		cfg.Log = &log
		r := NewRunner(cfg)
		out := r.AnalyzedJobs("A", 0)
		if len(out) == 0 {
			t.Fatalf("workers=%d: zipf run produced no analyses; test is vacuous", workers)
		}
		var buf bytes.Buffer
		for _, a := range out {
			fmt.Fprintf(&buf, "job %s span %v default %v/%v\n",
				a.Job.ID, a.Span, a.Default.Signature, a.Default.Metrics)
			for _, c := range a.Candidates {
				fmt.Fprintf(&buf, "  cand %v cost %v sig %v\n", c.Config, c.EstCost, c.Signature)
			}
			for _, s := range a.Selected {
				fmt.Fprintf(&buf, "  sel %v\n", s.Config)
			}
			for _, tr := range a.Trials {
				fmt.Fprintf(&buf, "  trial %v sig %v cost %v metrics %v\n",
					tr.Config, tr.Signature, tr.EstCost, tr.Metrics)
			}
			fmt.Fprintf(&buf, "  footprint %+v sched items=%d merges=%d\n",
				a.Footprint, a.Sched.Items, a.Sched.Merges)
		}
		buf.WriteString("--- log ---\n")
		buf.Write(log.Bytes())
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("zipf pipeline run not byte-identical at 1 vs 8 workers:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			serial, parallel)
	}
}

// TestAblationsParallelDeterminism covers the fanned-out ablation and
// extension loops at two worker counts.
func TestAblationsParallelDeterminism(t *testing.T) {
	type results struct {
		rvg  *AblationRandomVsGuided
		span *AblationSpanSearch
	}
	runAll := func(workers int) results {
		cfg := tinyConfig()
		cfg.Workers = workers
		r := NewRunner(cfg)
		rvg, err := r.RandomVsGuided("A", 0, 4, 3)
		if err != nil {
			t.Fatalf("workers=%d: RandomVsGuided: %v", workers, err)
		}
		span, err := r.SpanSearch("A", 0, 3, 10)
		if err != nil {
			t.Fatalf("workers=%d: SpanSearch: %v", workers, err)
		}
		return results{rvg: rvg, span: span}
	}
	serial := runAll(1)
	parallel := runAll(8)
	if len(serial.rvg.Rows) == 0 {
		t.Fatal("RandomVsGuided produced no rows; test is vacuous")
	}
	if len(serial.rvg.Rows) != len(parallel.rvg.Rows) {
		t.Fatalf("RandomVsGuided row count differs: %d vs %d", len(serial.rvg.Rows), len(parallel.rvg.Rows))
	}
	for i := range serial.rvg.Rows {
		if serial.rvg.Rows[i] != parallel.rvg.Rows[i] {
			t.Fatalf("RandomVsGuided row %d differs: %+v vs %+v", i, serial.rvg.Rows[i], parallel.rvg.Rows[i])
		}
	}
	if *serial.span != *parallel.span {
		t.Fatalf("SpanSearch differs: %+v vs %+v", serial.span, parallel.span)
	}
}
