package experiments

import (
	"bytes"
	"testing"

	"steerq/internal/bitvec"
)

// runAnalyzed runs AnalyzedJobs on a fresh Runner at the given worker count
// and returns the analyses plus the captured progress log.
func runAnalyzed(t *testing.T, workers int) ([]analysisSummary, string) {
	t.Helper()
	cfg := tinyConfig()
	cfg.Workers = workers
	var log bytes.Buffer
	cfg.Log = &log
	r := NewRunner(cfg)
	out := r.AnalyzedJobs("A", 0)
	if len(out) == 0 {
		t.Fatalf("workers=%d: no analyzed jobs; test is vacuous", workers)
	}
	sums := make([]analysisSummary, len(out))
	for i, a := range out {
		s := analysisSummary{
			job:        a.Job.ID,
			span:       a.Span,
			candidates: len(a.Candidates),
			defaultRT:  a.Default.Metrics.RuntimeSec,
		}
		for _, c := range a.Candidates {
			s.costSum += c.EstCost
		}
		for _, tr := range a.Trials {
			s.sigs = append(s.sigs, tr.Signature)
			s.runtimes = append(s.runtimes, tr.Metrics.RuntimeSec)
		}
		sums[i] = s
	}
	return sums, log.String()
}

type analysisSummary struct {
	job        string
	span       bitvec.Vector
	candidates int
	defaultRT  float64
	costSum    float64
	sigs       []bitvec.Vector
	runtimes   []float64
}

// TestAnalyzedJobsParallelDeterminism asserts the experiment substrate is
// bit-for-bit identical across worker counts, including the progress log.
func TestAnalyzedJobsParallelDeterminism(t *testing.T) {
	serial, serialLog := runAnalyzed(t, 1)
	for _, workers := range []int{2, 8} {
		parallel, parallelLog := runAnalyzed(t, workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d analyses vs %d serial", workers, len(parallel), len(serial))
		}
		for i := range serial {
			a, b := serial[i], parallel[i]
			if a.job != b.job || a.span != b.span || a.candidates != b.candidates ||
				a.defaultRT != b.defaultRT || a.costSum != b.costSum {
				t.Fatalf("workers=%d: analysis %d differs: %+v vs %+v", workers, i, a, b)
			}
			if len(a.sigs) != len(b.sigs) {
				t.Fatalf("workers=%d: analysis %d trial count differs", workers, i)
			}
			for j := range a.sigs {
				if a.sigs[j] != b.sigs[j] || a.runtimes[j] != b.runtimes[j] {
					t.Fatalf("workers=%d: analysis %d trial %d differs", workers, i, j)
				}
			}
		}
		if parallelLog != serialLog {
			t.Fatalf("workers=%d: progress log differs from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serialLog, parallelLog)
		}
	}
}

// TestAblationsParallelDeterminism covers the fanned-out ablation and
// extension loops at two worker counts.
func TestAblationsParallelDeterminism(t *testing.T) {
	type results struct {
		rvg  *AblationRandomVsGuided
		span *AblationSpanSearch
	}
	runAll := func(workers int) results {
		cfg := tinyConfig()
		cfg.Workers = workers
		r := NewRunner(cfg)
		rvg, err := r.RandomVsGuided("A", 0, 4, 3)
		if err != nil {
			t.Fatalf("workers=%d: RandomVsGuided: %v", workers, err)
		}
		span, err := r.SpanSearch("A", 0, 3, 10)
		if err != nil {
			t.Fatalf("workers=%d: SpanSearch: %v", workers, err)
		}
		return results{rvg: rvg, span: span}
	}
	serial := runAll(1)
	parallel := runAll(8)
	if len(serial.rvg.Rows) == 0 {
		t.Fatal("RandomVsGuided produced no rows; test is vacuous")
	}
	if len(serial.rvg.Rows) != len(parallel.rvg.Rows) {
		t.Fatalf("RandomVsGuided row count differs: %d vs %d", len(serial.rvg.Rows), len(parallel.rvg.Rows))
	}
	for i := range serial.rvg.Rows {
		if serial.rvg.Rows[i] != parallel.rvg.Rows[i] {
			t.Fatalf("RandomVsGuided row %d differs: %+v vs %+v", i, serial.rvg.Rows[i], parallel.rvg.Rows[i])
		}
	}
	if *serial.span != *parallel.span {
		t.Fatalf("SpanSearch differs: %+v vs %+v", serial.span, parallel.span)
	}
}
