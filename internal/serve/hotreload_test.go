package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/bundle"
	"steerq/internal/obs"
)

// expectedConfigs maps (version, signature) -> config hex for the synthetic
// v1/v2 bundles, the oracle the atomicity tests check every decision
// against: whatever version a decision reports, its config must be exactly
// that version's config for the signature. A mixture would be a torn read.
func expectedConfigs(bundles ...*bundle.Bundle) map[uint64]map[bitvec.Key]string {
	exp := make(map[uint64]map[bitvec.Key]string)
	for _, b := range bundles {
		m := make(map[bitvec.Key]string)
		for _, e := range b.Entries {
			m[e.Signature.Key()] = e.Config.Hex()
		}
		exp[b.Version] = m
	}
	return exp
}

// TestHotReloadAtomicSDK hammers Lookup from many goroutines while the main
// goroutine swaps between two bundle versions. Run under -race in CI; the
// oracle check catches torn (version, config) pairs even without it.
func TestHotReloadAtomicSDK(t *testing.T) {
	const (
		entries  = 8
		readers  = 8
		swaps    = 200
		loopsPer = 4000
	)
	v1 := testBundle(t, 1, entries)
	v2 := testBundle(t, 2, entries)
	exp := expectedConfigs(v1, v2)

	sdk := NewSDK(obs.NewWithClock(obs.FrozenClock()))
	if err := sdk.Load(v1); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < loopsPer && !stop.Load(); i++ {
				sig := v1.Entries[(r+i)%entries].Signature
				d, ok := sdk.Lookup(sig)
				if !ok {
					errs <- "lookup lost the table mid-swap"
					return
				}
				if d.Version != 1 && d.Version != 2 {
					errs <- "impossible version"
					return
				}
				if want := exp[d.Version][sig.Key()]; d.Config.Hex() != want {
					errs <- "torn read: config does not match reported version"
					return
				}
			}
		}(r)
	}
	for i := 0; i < swaps; i++ {
		b := v1
		if i%2 == 0 {
			b = v2
		}
		if err := sdk.Load(b); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestHotReloadAtomicHTTP is the same oracle over the daemon surface:
// readers hammer GET /v1/steer while a writer alternates POST /v1/bundles
// uploads, with corrupt uploads interleaved. Every response must be
// internally consistent and corrupt uploads must never interrupt serving.
func TestHotReloadAtomicHTTP(t *testing.T) {
	const (
		entries = 6
		readers = 4
		swaps   = 30
	)
	v1 := testBundle(t, 1, entries)
	v2 := testBundle(t, 2, entries)
	exp := expectedConfigs(v1, v2)
	enc1, enc2 := encodeBundle(t, v1), encodeBundle(t, v2)

	reg := obs.NewWithClock(obs.FrozenClock())
	s, base := startServer(t, reg)
	if err := s.SDK().Load(v1); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				sig := v1.Entries[(r+i)%entries].Signature
				resp, err := http.Get(base + PathSteer + "?sig=" + sig.Hex())
				if err != nil {
					errs <- "steer request failed: " + err.Error()
					return
				}
				var sr SteerResponse
				derr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != 200 {
					errs <- "steer response broke during swaps"
					return
				}
				if want := exp[sr.Version][sig.Key()]; sr.Config != want {
					errs <- "torn read over HTTP"
					return
				}
			}
		}(r)
	}

	post := func(data []byte, wantCode int) {
		t.Helper()
		if code, _ := postBundle(t, base, data); code != wantCode {
			t.Fatalf("POST bundle code %d, want %d", code, wantCode)
		}
	}
	for i := 0; i < swaps; i++ {
		if i%2 == 0 {
			post(enc2, 200)
		} else {
			post(enc1, 200)
		}
		if i%5 == 0 {
			// A corrupt upload mid-hammer: rejected, serving uninterrupted.
			post(enc1[:len(enc1)/3], 400)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// The last accepted upload is still the active one.
	code, body := get(t, base+PathBundles)
	if code != 200 || !strings.Contains(body, `"version":1`) {
		t.Fatalf("active bundle after hammer: %d %s", code, body)
	}
}
