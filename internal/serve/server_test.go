package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"steerq/internal/obs"
)

func TestLifecycleTransitions(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	s := NewServer(NewSDK(reg), reg)
	if st := s.State(); st != StateStarting {
		t.Fatalf("fresh server state %v", st)
	}

	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// The lifecycle walks no-bundle -> ready -> draining; at each stage the
	// probe pair must answer exactly as the table says.
	steps := []struct {
		name        string
		move        func()
		state       State
		healthzCode int
		readyzCode  int
		readyzBody  string
	}{
		{
			name:  "listening without a bundle",
			move:  func() {},
			state: StateNoBundle, healthzCode: 200, readyzCode: 503, readyzBody: "no-bundle",
		},
		{
			name: "bundle loaded",
			move: func() {
				if err := s.SDK().Load(testBundle(t, 1, 3)); err != nil {
					t.Fatal(err)
				}
			},
			state: StateReady, healthzCode: 200, readyzCode: 200, readyzBody: "ready",
		},
		{
			name:  "draining",
			move:  func() { s.BeginDrain() },
			state: StateDraining, healthzCode: 503, readyzCode: 503, readyzBody: "draining",
		},
	}
	for _, step := range steps {
		step.move()
		if st := s.State(); st != step.state {
			t.Fatalf("%s: state %v, want %v", step.name, st, step.state)
		}
		code, _ := get(t, base+PathHealthz)
		if code != step.healthzCode {
			t.Fatalf("%s: healthz %d, want %d", step.name, code, step.healthzCode)
		}
		code, body := get(t, base+PathReadyz)
		if code != step.readyzCode || !strings.Contains(body, step.readyzBody) {
			t.Fatalf("%s: readyz %d %q, want %d %q", step.name, code, body, step.readyzCode, step.readyzBody)
		}
	}
	if s.BeginDrain() {
		t.Fatal("second BeginDrain reported first")
	}
}

func TestSteerEndpoint(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	s, base := startServer(t, reg)

	// Unloaded: a well-formed query gets 503.
	sig := sigFor(0)
	if code, _ := get(t, base+PathSteer+"?sig="+sig.Hex()); code != 503 {
		t.Fatalf("unloaded steer code %d", code)
	}

	b := testBundle(t, 9, 4)
	if err := s.SDK().Load(b); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		url  string
		code int
	}{
		{"missing sig", base + PathSteer, 400},
		{"bad hex", base + PathSteer + "?sig=zzzz", 400},
		{"hit", base + PathSteer + "?sig=" + b.Entries[0].Signature.Hex(), 200},
		{"fallback", base + PathSteer + "?sig=" + b.Entries[2].Signature.Hex(), 200},
		{"miss", base + PathSteer + "?sig=" + vec(250).Hex(), 200},
	}
	wantKind := map[string]string{"hit": "hit", "fallback": "fallback", "miss": "default"}
	wantCfg := map[string]string{
		"hit":      b.Entries[0].Config.Hex(),
		"fallback": b.Entries[2].Config.Hex(),
		"miss":     b.Default.Hex(),
	}
	for _, c := range cases {
		code, body := get(t, c.url)
		if code != c.code {
			t.Fatalf("%s: code %d, want %d (body %q)", c.name, code, c.code, body)
		}
		if code != 200 {
			var e ErrorResponse
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Fatalf("%s: error body %q", c.name, body)
			}
			continue
		}
		var r SteerResponse
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if r.Version != 9 || r.Kind != wantKind[c.name] || r.Config != wantCfg[c.name] {
			t.Fatalf("%s: response %+v", c.name, r)
		}
	}

	// Wrong method.
	resp, err := http.Post(base+PathSteer, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST steer code %d", resp.StatusCode)
	}

	// The request counter saw the steer traffic; the probes stayed uncounted.
	if got := reg.Counter("steerq_serve_requests_total", "path", PathSteer, "code", "200").Value(); got != 3 {
		t.Fatalf("steer 200 counter %d, want 3", got)
	}
	if got := reg.Counter("steerq_serve_requests_total", "path", PathSteer, "code", "400").Value(); got != 2 {
		t.Fatalf("steer 400 counter %d, want 2", got)
	}
	get(t, base+PathHealthz)
	for _, cp := range reg.Snapshot().Counters {
		if cp.Name != "steerq_serve_requests_total" {
			continue
		}
		for _, l := range cp.Labels {
			if l.Key == "path" && (l.Value == PathHealthz || l.Value == PathReadyz) {
				t.Fatalf("probe path %s was counted", l.Value)
			}
		}
	}
}

func TestBundlesEndpoint(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	_, base := startServer(t, reg)

	if code, _ := get(t, base+PathBundles); code != 404 {
		t.Fatalf("bundles before load: %d", code)
	}

	b := testBundle(t, 5, 4)
	code, body := postBundle(t, base, encodeBundle(t, b))
	if code != 200 {
		t.Fatalf("POST bundle code %d", code)
	}
	var info BundleInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	want := BundleInfo{
		Version: 5, Workload: "W", Entries: 4,
		Checksum: fmt.Sprintf("%016x", b.Checksum()), CreatedUnix: 1700000000,
	}
	if info != want {
		t.Fatalf("bundle info %+v, want %+v", info, want)
	}

	code, body = get(t, base+PathBundles)
	var got BundleInfo
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if code != 200 || got != want {
		t.Fatalf("GET bundles %d %+v", code, got)
	}

	// A corrupt upload is refused and the active bundle survives.
	if code, _ = postBundle(t, base, []byte("definitely not a bundle")); code != 400 {
		t.Fatalf("corrupt POST code %d", code)
	}
	if _, body = get(t, base+PathBundles); !strings.Contains(body, `"version":5`) {
		t.Fatalf("active bundle lost after corrupt upload: %s", body)
	}

	req, err := http.NewRequest(http.MethodDelete, base+PathBundles, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("DELETE bundles code %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	s, base := startServer(t, reg)
	if err := s.SDK().Load(testBundle(t, 2, 3)); err != nil {
		t.Fatal(err)
	}
	get(t, base+PathSteer+"?sig="+sigFor(0).Hex())

	resp, err := http.Get(base + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"steerq_serve_lookups_total", "steerq_serve_bundle_version",
		"steerq_serve_lookup_seconds", "steerq_serve_requests_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, body)
		}
	}
}

// TestGracefulDrainCompletesInFlight pins a steer request in-flight, starts
// the drain, and checks the three-part contract: the drain waits for the
// pinned request, new connections are refused, and the pinned request still
// completes successfully.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	s, base := startServer(t, reg)
	if err := s.SDK().Load(testBundle(t, 1, 3)); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	s.holdSteer = (func() {
		entered <- struct{}{}
		<-release
	})

	type result struct {
		code int
		body string
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + PathSteer + "?sig=" + sigFor(0).Hex())
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: string(body)}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()

	// The drain must not complete while the request is pinned.
	select {
	case err := <-drained:
		t.Fatalf("shutdown returned with a request in-flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New connections are refused once the listener closed. The listener
	// close races with Shutdown's start, so poll briefly.
	refused := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + PathHealthz)
		if err != nil {
			refused = true
			break
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Fatal("new connections still accepted during drain")
	}

	close(release)
	r := <-inflight
	if r.err != nil || r.code != 200 {
		t.Fatalf("in-flight request did not complete cleanly: %+v", r)
	}
	var sr SteerResponse
	if err := json.Unmarshal([]byte(r.body), &sr); err != nil || sr.Version != 1 {
		t.Fatalf("in-flight response body %q: %v", r.body, err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDrainOnSignalGraceful(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	s, _ := startServer(t, reg)
	if err := s.SDK().Load(testBundle(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 2)
	done := make(chan bool, 1)
	go func() { done <- s.DrainOnSignal(sig, time.Second) }()
	sig <- syscall.SIGTERM
	if forced := <-done; forced {
		t.Fatal("idle drain reported forced")
	}
	if st := s.State(); st != StateDraining {
		t.Fatalf("state after drain %v", st)
	}
}

// TestDrainOnSignalDoubleForces pins a request so the graceful drain can
// never finish, then delivers a second signal: the escape hatch must force
// the shutdown and report it.
func TestDrainOnSignalDoubleForces(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	s, base := startServer(t, reg)
	if err := s.SDK().Load(testBundle(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	s.holdSteer = (func() {
		entered <- struct{}{}
		<-release
	})
	go func() {
		resp, err := http.Get(base + PathSteer + "?sig=" + sigFor(0).Hex())
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	sig := make(chan os.Signal, 2)
	done := make(chan bool, 1)
	go func() { done <- s.DrainOnSignal(sig, 0) }()
	sig <- syscall.SIGTERM
	// Let the graceful drain start and wedge on the pinned request.
	time.Sleep(20 * time.Millisecond)
	sig <- syscall.SIGTERM
	select {
	case forced := <-done:
		if !forced {
			t.Fatal("double signal did not report forced")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("double signal did not force shutdown")
	}
}
