package serve

import (
	"context"
	"os"
	"time"

	"steerq/internal/obs"
)

// Watch polls path on every tick and hot-reloads the bundle whenever the
// file's (mtime, size) pair changes — the offline pipeline writes bundles
// with an atomic rename, so a change is always a complete artifact. A file
// that fails to decode is rejected (counted on the rejected counter) and
// the active table stays live; the watcher keeps polling, so a later good
// write recovers automatically. Watch blocks until ctx is canceled.
//
// The poll cadence comes from the SDK's NewTicker seam (obs.NewWallTicker
// unless a test injected an obs.ManualTicker), so watch-driven hot-reload
// tests advance the watcher explicitly instead of racing a real ticker.
//
// onSwap, when non-nil, is invoked after each load attempt with the path's
// error (nil on a successful swap) — the daemon logs through it.
func (s *SDK) Watch(ctx context.Context, path string, interval time.Duration, onSwap func(error)) {
	if interval <= 0 {
		interval = time.Second
	}
	newTicker := s.NewTicker
	if newTicker == nil {
		newTicker = obs.NewWallTicker
	}
	t := newTicker(interval)
	defer t.Stop()
	var lastMod time.Time
	lastSize := int64(-1)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C():
			fi, err := os.Stat(path)
			if err != nil {
				continue
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			lastMod, lastSize = fi.ModTime(), fi.Size()
			err = s.LoadFile(path)
			if onSwap != nil {
				onSwap(err)
			}
		}
	}
}
