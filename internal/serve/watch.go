package serve

import (
	"context"
	"os"
	"time"
)

// Watch polls path every interval and hot-reloads the bundle whenever the
// file's (mtime, size) pair changes — the offline pipeline writes bundles
// with an atomic rename, so a change is always a complete artifact. A file
// that fails to decode is rejected (counted on the rejected counter) and
// the active table stays live; the watcher keeps polling, so a later good
// write recovers automatically. Watch blocks until ctx is canceled.
//
// onSwap, when non-nil, is invoked after each load attempt with the path's
// error (nil on a successful swap) — the daemon logs through it.
func (s *SDK) Watch(ctx context.Context, path string, interval time.Duration, onSwap func(error)) {
	if interval <= 0 {
		interval = time.Second
	}
	// The poll cadence is operational, not part of any deterministic
	// output; lookups and goldens never observe it.
	// steerq:allow-wallclock — operational poll cadence only.
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastMod time.Time
	lastSize := int64(-1)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			fi, err := os.Stat(path)
			if err != nil {
				continue
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			lastMod, lastSize = fi.ModTime(), fi.Size()
			err = s.LoadFile(path)
			if onSwap != nil {
				onSwap(err)
			}
		}
	}
}
