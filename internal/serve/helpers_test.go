package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/bundle"
	"steerq/internal/obs"
	"steerq/internal/xrand"
)

// startServer binds a loopback listener and returns the server plus its base
// URL. The server is closed when the test finishes.
func startServer(t *testing.T, reg *obs.Registry) (*Server, string) {
	t.Helper()
	s := NewServer(NewSDK(reg), reg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, "http://" + s.Addr()
}

// get issues a GET and returns (status, body).
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// postBundle uploads an encoded bundle to base's bundle endpoint and returns
// (status, body).
func postBundle(t *testing.T, base string, data []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(base+PathBundles, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", base+PathBundles, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// vec builds a vector with exactly the given bits set.
func vec(bits ...int) bitvec.Vector {
	return bitvec.New(bits...)
}

// testBundle builds a deterministic bundle with n entries whose configs
// depend on version — the hot-reload tests use that dependence to detect
// torn (version, config) pairs. Entry i's signature is stable across
// versions; its config carries the version in its low bits. Every third
// entry is a fallback pinned to the default configuration.
func testBundle(t *testing.T, version uint64, n int) *bundle.Bundle {
	t.Helper()
	b := &bundle.Bundle{
		Version:     version,
		CreatedUnix: 1700000000,
		Workload:    "W",
		Default:     vec(200, 201),
	}
	for i := 0; i < n; i++ {
		e := bundle.Entry{Signature: sigFor(i)}
		if i%3 == 2 {
			e.Config, e.Fallback = b.Default, true
		} else {
			e.Config = configFor(version, i)
		}
		b.Entries = append(b.Entries, e)
	}
	if _, err := b.Encode(); err != nil {
		t.Fatalf("encode test bundle: %v", err)
	}
	return b
}

// sigFor is entry i's signature, stable across bundle versions.
func sigFor(i int) bitvec.Vector {
	v := vec(100)
	r := xrand.New(uint64(i)).Derive("sig")
	for j := 0; j < 4; j++ {
		v.Set(r.Intn(90))
	}
	v.Set(90 + i%10)
	return v
}

// configFor is entry i's steered config in the given bundle version.
func configFor(version uint64, i int) bitvec.Vector {
	v := vec(150, 151+i%8)
	if version%2 == 0 {
		v.Set(160)
	} else {
		v.Set(161)
	}
	return v
}

// encodeBundle encodes b, failing the test on error.
func encodeBundle(t *testing.T, b *bundle.Bundle) []byte {
	t.Helper()
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}
