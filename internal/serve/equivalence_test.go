package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/bundle"
	"steerq/internal/cost"
	"steerq/internal/obs"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// buildPipeline builds a discovery pipeline over a small generated workload,
// the same shape the offline `steerq bundle build` command wires up.
func buildPipeline(workers int) (*steering.Pipeline, *abtest.Harness, []*workload.Job) {
	w := workload.Generate(workload.ProfileB(0.002, 5))
	h := abtest.New(w.Cat, rules.NewOptimizer(cost.NewEstimated(w.Cat)), 7)
	p := steering.NewPipeline(h, xrand.New(11).Derive("equiv-test"))
	p.MaxCandidates = 20
	p.ExecutePerJob = 3
	p.Workers = workers
	jobs := w.Day(0)
	if len(jobs) > 14 {
		jobs = jobs[:14]
	}
	return p, h, jobs
}

// TestServingEquivalence is the metamorphic serving-path battery: the
// offline bundle build must be byte-identical at any worker count, and the
// decision for every job must be identical whether read from the bundle
// directly, through the in-process SDK, or over HTTP — the three deployment
// surfaces can never disagree.
func TestServingEquivalence(t *testing.T) {
	p1, h, jobs := buildPipeline(1)
	b1, rep, err := p1.BuildBundle(jobs, 42, 1700000000)
	if err != nil {
		t.Fatal(err)
	}
	p8, _, jobs8 := buildPipeline(8)
	b8, rep8, err := p8.BuildBundle(jobs8, 42, 1700000000)
	if err != nil {
		t.Fatal(err)
	}

	// Metamorphic leg 1: worker count must not leak into the artifact.
	if !bytes.Equal(encodeBundle(t, b1), encodeBundle(t, b8)) {
		t.Fatal("bundle bytes differ between Workers=1 and Workers=8")
	}
	if rep != rep8 {
		t.Fatalf("bundle reports differ: %+v vs %+v", rep, rep8)
	}
	if rep.Jobs != len(jobs) || rep.Groups != len(b1.Entries) ||
		rep.Steered+rep.Fallbacks+rep.Failed != rep.Groups {
		t.Fatalf("report does not add up: %+v over %d entries", rep, len(b1.Entries))
	}
	if rep.Failed != 0 {
		t.Fatalf("analyses failed without fault injection: %+v", rep)
	}

	// Offline oracle: the bundle's own entry map.
	offline := make(map[bitvec.Key]bundle.Entry, len(b1.Entries))
	for _, e := range b1.Entries {
		offline[e.Signature.Key()] = e
	}

	reg := obs.NewWithClock(obs.FrozenClock())
	srv, base := startServer(t, reg)
	sdk := srv.SDK()
	if err := sdk.Load(b1); err != nil {
		t.Fatal(err)
	}

	// Metamorphic leg 2: offline == SDK == HTTP for every job in the
	// workload, byte-for-byte on the config hex.
	g := steering.NewGrouper(h)
	for _, job := range jobs {
		sig, err := g.DefaultSignature(job)
		if err != nil {
			t.Fatalf("%s: %v", job.ID, err)
		}
		e, ok := offline[sig.Key()]
		if !ok {
			t.Fatalf("%s: signature missing from bundle — groups did not cover the workload", job.ID)
		}

		d, ok := sdk.Lookup(sig)
		if !ok {
			t.Fatalf("%s: SDK lookup not ready", job.ID)
		}
		if d.Version != 42 || !d.Config.Equal(e.Config) {
			t.Fatalf("%s: SDK decision %s != offline %s", job.ID, d.Config.Hex(), e.Config.Hex())
		}
		if d.Kind == KindDefault {
			t.Fatalf("%s: covered job resolved as a miss", job.ID)
		}
		if (d.Kind == KindFallback) != e.Fallback {
			t.Fatalf("%s: kind %v vs fallback flag %v", job.ID, d.Kind, e.Fallback)
		}

		resp, err := http.Get(base + PathSteer + "?sig=" + sig.Hex())
		if err != nil {
			t.Fatal(err)
		}
		var sr SteerResponse
		derr := json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != 200 {
			t.Fatalf("%s: HTTP steer %d: %v", job.ID, resp.StatusCode, derr)
		}
		if sr.Config != e.Config.Hex() || sr.Version != 42 || sr.Kind != d.Kind.String() {
			t.Fatalf("%s: HTTP decision %+v != offline %s", job.ID, sr, e.Config.Hex())
		}
	}

	// Metamorphic leg 3: the steered executor compiles under exactly the
	// bundle's decision — RunSteered through the SDK agrees with the entry.
	h.Steer = sdk
	def := h.Opt.Rules.DefaultConfig()
	for _, job := range jobs[:4] {
		sig, err := g.DefaultSignature(job)
		if err != nil {
			t.Fatal(err)
		}
		e := offline[sig.Key()]
		tr, steered := h.RunSteered(job.Root, 0, job.ID)
		if tr.Err != nil {
			t.Fatalf("%s: steered trial failed: %v", job.ID, tr.Err)
		}
		if !tr.Config.Equal(e.Config) {
			t.Fatalf("%s: executed config %s != bundle decision %s", job.ID, tr.Config.Hex(), e.Config.Hex())
		}
		if want := !e.Config.Equal(def); steered != want {
			t.Fatalf("%s: steered=%v, want %v", job.ID, steered, want)
		}
	}

	// With no bundle live the executor behaves exactly unsteered.
	h.Steer = NewSDK(nil)
	tr, steered := h.RunSteered(jobs[0].Root, 0, jobs[0].ID)
	if steered || tr.Err != nil || !tr.Config.Equal(def) {
		t.Fatalf("unloaded steerer changed execution: steered=%v cfg=%s err=%v",
			steered, tr.Config.Hex(), tr.Err)
	}
}
