// Package serve is steerq's online serving tier: the decision-table and
// handler logic behind cmd/steerqd, plus the embeddable SDK the batch tools
// use to consult steering in-process.
//
// The paper's production successor ("Deploying a Steered Query Optimizer in
// Production at Microsoft") deploys steering as a recommendation service the
// compiler calls once per job, at microsecond latency, fed by versioned
// artifacts from an offline pipeline. This package reproduces that shape:
//
//   - Table is one bundle compiled into an immutable in-memory decision
//     table — built once, then only read;
//   - SDK owns an atomic pointer to the active Table and swaps it whole on
//     bundle load, so every lookup sees exactly one bundle version end to
//     end (see DESIGN.md, "Immutable tables and the atomic swap");
//   - Server is the HTTP surface: GET /v1/steer lookups, POST /v1/bundles
//     hot reload, /metrics, /healthz and /readyz wired to internal/obs,
//     and graceful drain for SIGTERM handling.
//
// The lookup read path is allocation-free after warmup: instruments are
// resolved once at SDK construction, the table is a plain map keyed by the
// comparable bitvec.Key, and decisions are returned by value.
// (steerq:hotpath — the hotalloc analyzer guards this package against
// allocation regressions.)
package serve
