package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"steerq/internal/obs"
)

// startWatch wires a manual ticker into sdk and runs Watch in the
// background, returning the ticker, the swap-callback channel and the
// watcher's done channel. Every poll is driven explicitly by Tick, so the
// tests are deterministic: no real timers, no sleeps.
func startWatch(ctx context.Context, sdk *SDK, path string) (*obs.ManualTicker, chan error, chan struct{}) {
	ticker := obs.NewManualTicker()
	sdk.NewTicker = func(time.Duration) obs.Ticker { return ticker }
	swaps := make(chan error, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sdk.Watch(ctx, path, time.Second, func(err error) { swaps <- err })
	}()
	return ticker, swaps, done
}

// pollOnce drives exactly one complete poll: the first Tick starts it, the
// second returns only once the loop is back at its receive — i.e. the poll
// (and any swap callback it made) has finished.
func pollOnce(ticker *obs.ManualTicker) {
	ticker.Tick()
	ticker.Tick()
}

// wantSwap asserts the last completed poll reported exactly one swap with
// the wanted error-ness; wantNoSwap asserts it reported none. Both read a
// buffered channel after pollOnce, so there is no timing window.
func wantSwap(t *testing.T, stage string, swaps chan error, wantErr bool) {
	t.Helper()
	select {
	case err := <-swaps:
		if (err != nil) != wantErr {
			t.Fatalf("%s: swap error %v, wantErr=%v", stage, err, wantErr)
		}
	default:
		t.Fatalf("%s: poll completed without a swap callback", stage)
	}
}

func wantNoSwap(t *testing.T, stage string, swaps chan error) {
	t.Helper()
	select {
	case err := <-swaps:
		t.Fatalf("%s: unexpected swap callback: %v", stage, err)
	default:
	}
}

// TestWatchReloadsRejectsAndRecovers walks the watcher through its whole
// contract on one file: pick up the initial bundle, pick up a replacement,
// reject a corrupt overwrite without dropping the active table, and recover
// when a good bundle lands again — one explicitly driven poll per step.
func TestWatchReloadsRejectsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "active.stqb")
	if err := testBundle(t, 1, 3).WriteFile(path); err != nil {
		t.Fatal(err)
	}

	sdk := NewSDK(obs.NewWithClock(obs.FrozenClock()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ticker, swaps, done := startWatch(ctx, sdk, path)

	pollOnce(ticker)
	wantSwap(t, "initial load", swaps, false)
	if v := sdk.Active().Version(); v != 1 {
		t.Fatalf("initial version %d", v)
	}

	// An unchanged file polls quietly: same (mtime, size), no reload.
	pollOnce(ticker)
	wantNoSwap(t, "unchanged file", swaps)

	// Each successive bundle has a different entry count so its size — not
	// just its mtime, whose granularity is filesystem-dependent and coarser
	// than this test — marks the file as changed.
	if err := testBundle(t, 2, 4).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	pollOnce(ticker)
	wantSwap(t, "reload", swaps, false)
	if v := sdk.Active().Version(); v != 2 {
		t.Fatalf("reloaded version %d", v)
	}

	// A corrupt overwrite is rejected; the v2 table stays live. The write
	// goes through a rename, like every deploy, so a concurrent poll sees
	// either the old bundle or the complete corrupt file — never a torn one.
	tmp := filepath.Join(dir, "corrupt.tmp")
	if err := os.WriteFile(tmp, []byte("scribbled over by a bad deploy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	pollOnce(ticker)
	wantSwap(t, "corrupt overwrite", swaps, true)
	if v := sdk.Active().Version(); v != 2 {
		t.Fatalf("corrupt overwrite displaced the table: version %d", v)
	}

	// The watcher keeps polling, so the next good write recovers.
	if err := testBundle(t, 3, 5).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	pollOnce(ticker)
	wantSwap(t, "recovery", swaps, false)
	if v := sdk.Active().Version(); v != 3 {
		t.Fatalf("recovered version %d", v)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on context cancel")
	}
	// The watcher stopped its ticker on the way out, so a stray tick is a
	// no-op rather than a deadlock.
	ticker.Tick()
}

// TestWatchMissingFile starts the watcher on a path that does not exist yet:
// it must idle without error reports and load the bundle when it appears.
func TestWatchMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "late.stqb")
	sdk := NewSDK(obs.NewWithClock(obs.FrozenClock()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ticker, swaps, done := startWatch(ctx, sdk, path)

	for i := 0; i < 3; i++ {
		pollOnce(ticker)
	}
	wantNoSwap(t, "missing file", swaps)
	if sdk.Ready() {
		t.Fatal("ready with no file")
	}

	if err := testBundle(t, 4, 2).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	pollOnce(ticker)
	wantSwap(t, "late file load", swaps, false)
	if v := sdk.Active().Version(); v != 4 {
		t.Fatalf("late-file version %d", v)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on context cancel")
	}
}
