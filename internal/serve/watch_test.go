package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"steerq/internal/obs"
)

// TestWatchReloadsRejectsAndRecovers walks the watcher through its whole
// contract on one file: pick up the initial bundle, pick up a replacement,
// reject a corrupt overwrite without dropping the active table, and recover
// when a good bundle lands again.
func TestWatchReloadsRejectsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "active.stqb")
	if err := testBundle(t, 1, 3).WriteFile(path); err != nil {
		t.Fatal(err)
	}

	sdk := NewSDK(obs.NewWithClock(obs.FrozenClock()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	swaps := make(chan error, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sdk.Watch(ctx, path, 5*time.Millisecond, func(err error) { swaps <- err })
	}()

	waitSwap := func(stage string, wantErr bool) {
		t.Helper()
		select {
		case err := <-swaps:
			if (err != nil) != wantErr {
				t.Fatalf("%s: swap error %v, wantErr=%v", stage, err, wantErr)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: watcher never reacted", stage)
		}
	}

	waitSwap("initial load", false)
	if v := sdk.Active().Version(); v != 1 {
		t.Fatalf("initial version %d", v)
	}

	if err := testBundle(t, 2, 3).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	waitSwap("reload", false)
	if v := sdk.Active().Version(); v != 2 {
		t.Fatalf("reloaded version %d", v)
	}

	// A corrupt overwrite (different size, so the stat check fires) is
	// rejected; the v2 table stays live.
	if err := os.WriteFile(path, []byte("scribbled over by a bad deploy"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitSwap("corrupt overwrite", true)
	if v := sdk.Active().Version(); v != 2 {
		t.Fatalf("corrupt overwrite displaced the table: version %d", v)
	}

	// The watcher keeps polling, so the next good write recovers.
	if err := testBundle(t, 3, 4).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	waitSwap("recovery", false)
	if v := sdk.Active().Version(); v != 3 {
		t.Fatalf("recovered version %d", v)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on context cancel")
	}
}

// TestWatchMissingFile starts the watcher on a path that does not exist yet:
// it must idle without error reports and load the bundle when it appears.
func TestWatchMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "late.stqb")
	sdk := NewSDK(obs.NewWithClock(obs.FrozenClock()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	swaps := make(chan error, 8)
	go sdk.Watch(ctx, path, 5*time.Millisecond, func(err error) { swaps <- err })

	time.Sleep(30 * time.Millisecond)
	select {
	case err := <-swaps:
		t.Fatalf("swap callback before the file exists: %v", err)
	default:
	}
	if sdk.Ready() {
		t.Fatal("ready with no file")
	}

	if err := testBundle(t, 4, 2).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-swaps:
		if err != nil {
			t.Fatalf("late file load: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never picked up the late file")
	}
	if v := sdk.Active().Version(); v != 4 {
		t.Fatalf("late-file version %d", v)
	}
}
