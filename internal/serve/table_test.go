package serve

import (
	"testing"

	"steerq/internal/bitvec"
)

func TestTableLookupKinds(t *testing.T) {
	b := testBundle(t, 7, 6)
	tab := NewTable(b)

	if tab.Version() != 7 || tab.Workload() != "W" || tab.Len() != 6 {
		t.Fatalf("table metadata: version=%d workload=%q len=%d",
			tab.Version(), tab.Workload(), tab.Len())
	}
	if tab.Checksum() != b.Checksum() {
		t.Fatalf("table checksum %x != bundle checksum %x", tab.Checksum(), b.Checksum())
	}
	if !tab.Default().Equal(b.Default) {
		t.Fatal("table default differs from bundle default")
	}

	for i, e := range b.Entries {
		d := tab.Lookup(e.Signature)
		if d.Version != 7 {
			t.Fatalf("entry %d: version %d", i, d.Version)
		}
		if !d.Config.Equal(e.Config) {
			t.Fatalf("entry %d: config %s != %s", i, d.Config.Hex(), e.Config.Hex())
		}
		want := KindHit
		if e.Fallback {
			want = KindFallback
		}
		if d.Kind != want {
			t.Fatalf("entry %d: kind %v, want %v", i, d.Kind, want)
		}
	}

	// A signature with no entry is a total miss: default config, KindDefault.
	miss := tab.Lookup(vec(255))
	if miss.Kind != KindDefault || !miss.Config.Equal(b.Default) || miss.Version != 7 {
		t.Fatalf("miss decision: %+v", miss)
	}
	var zero bitvec.Vector
	if d := tab.Lookup(zero); d.Kind != KindDefault {
		t.Fatalf("zero-signature lookup kind %v", d.Kind)
	}
}

func TestKindWireNames(t *testing.T) {
	for _, k := range []Kind{KindHit, KindFallback, KindDefault} {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("ParseKind accepted unknown name")
	}
	if s := Kind(99).String(); s != "default" {
		t.Fatalf("out-of-range kind renders %q", s)
	}
}
