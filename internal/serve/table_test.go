package serve

import (
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/bundle"
)

func TestTableLookupKinds(t *testing.T) {
	b := testBundle(t, 7, 6)
	tab := NewTable(b)

	if tab.Version() != 7 || tab.Workload() != "W" || tab.Len() != 6 {
		t.Fatalf("table metadata: version=%d workload=%q len=%d",
			tab.Version(), tab.Workload(), tab.Len())
	}
	if tab.Checksum() != b.Checksum() {
		t.Fatalf("table checksum %x != bundle checksum %x", tab.Checksum(), b.Checksum())
	}
	if !tab.Default().Equal(b.Default) {
		t.Fatal("table default differs from bundle default")
	}

	for i, e := range b.Entries {
		d := tab.Lookup(e.Signature)
		if d.Version != 7 {
			t.Fatalf("entry %d: version %d", i, d.Version)
		}
		if !d.Config.Equal(e.Config) {
			t.Fatalf("entry %d: config %s != %s", i, d.Config.Hex(), e.Config.Hex())
		}
		want := KindHit
		if e.Fallback {
			want = KindFallback
		}
		if d.Kind != want {
			t.Fatalf("entry %d: kind %v, want %v", i, d.Kind, want)
		}
	}

	// A signature with no entry is a total miss: default config, KindDefault.
	miss := tab.Lookup(vec(255))
	if miss.Kind != KindDefault || !miss.Config.Equal(b.Default) || miss.Version != 7 {
		t.Fatalf("miss decision: %+v", miss)
	}
	var zero bitvec.Vector
	if d := tab.Lookup(zero); d.Kind != KindDefault {
		t.Fatalf("zero-signature lookup kind %v", d.Kind)
	}
}

// uniqueBundle builds a bundle with n entries whose signatures are unique by
// construction: entry i sets bit j exactly when bit j of i is set (plus a
// high marker bit). Unlike testBundle's sigFor, this cannot collide at large
// n, so it is safe for building tables big enough to shard.
func uniqueBundle(t *testing.T, version uint64, n int) *bundle.Bundle {
	t.Helper()
	if n >= 1<<16 {
		t.Fatalf("uniqueBundle supports < 65536 entries, got %d", n)
	}
	b := &bundle.Bundle{
		Version:     version,
		CreatedUnix: 1700000000,
		Workload:    "W",
		Default:     vec(200, 201),
	}
	for i := 0; i < n; i++ {
		sig := vec(100)
		for j := 0; j < 16; j++ {
			if i>>j&1 == 1 {
				sig.Set(j)
			}
		}
		e := bundle.Entry{Signature: sig}
		if i%3 == 2 {
			e.Config, e.Fallback = b.Default, true
		} else {
			e.Config = configFor(version, i)
		}
		b.Entries = append(b.Entries, e)
	}
	return b
}

// TestTableShardingEquivalence builds the same bundle into both layouts by
// moving the shard threshold, and checks every entry plus a block of misses
// resolves identically. This is the license to flip layouts by size: lookups
// cannot tell them apart.
func TestTableShardingEquivalence(t *testing.T) {
	const n = 300
	b := uniqueBundle(t, 3, n)

	defer func(old int) { shardThreshold = old }(shardThreshold)
	shardThreshold = 1 << 20
	flat := NewTable(b)
	shardThreshold = n - 1
	sharded := NewTable(b)

	if flat.Sharded() {
		t.Fatal("flat table reports sharded")
	}
	if !sharded.Sharded() {
		t.Fatal("large table did not shard")
	}
	if flat.Len() != n || sharded.Len() != n {
		t.Fatalf("lens %d/%d, want %d", flat.Len(), sharded.Len(), n)
	}

	check := func(sig bitvec.Vector) {
		t.Helper()
		df, ds := flat.Lookup(sig), sharded.Lookup(sig)
		if df.Kind != ds.Kind || df.Version != ds.Version || !df.Config.Equal(ds.Config) {
			t.Fatalf("layouts disagree on %s: flat %+v sharded %+v", sig.Hex(), df, ds)
		}
	}
	for _, e := range b.Entries {
		check(e.Signature)
		if d := sharded.Lookup(e.Signature); e.Fallback && d.Kind != KindFallback {
			t.Fatalf("fallback entry resolved as %v", d.Kind)
		}
	}
	// Misses: the same construction with the marker bit moved, so none of
	// these signatures exist in the table; every shard sees some of them.
	for i := 0; i < n; i++ {
		sig := vec(101)
		for j := 0; j < 16; j++ {
			if i>>j&1 == 1 {
				sig.Set(j)
			}
		}
		check(sig)
		if d := sharded.Lookup(sig); d.Kind != KindDefault {
			t.Fatalf("miss %d resolved as %v", i, d.Kind)
		}
	}
}

// TestShardOfSpread pins the shard function: consecutive low-word prefixes
// land on distinct shards and the whole range [0, tableShards) is covered.
func TestShardOfSpread(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < tableShards; i++ {
		sig := vec(100)
		for j := 0; j < 4; j++ {
			if i>>j&1 == 1 {
				sig.Set(j)
			}
		}
		s := shardOf(sig.Key())
		if s != i {
			t.Fatalf("shardOf(prefix %d) = %d", i, s)
		}
		seen[s] = true
	}
	if len(seen) != tableShards {
		t.Fatalf("covered %d shards, want %d", len(seen), tableShards)
	}
}

func TestKindWireNames(t *testing.T) {
	for _, k := range []Kind{KindHit, KindFallback, KindDefault} {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("ParseKind accepted unknown name")
	}
	if s := Kind(99).String(); s != "default" {
		t.Fatalf("out-of-range kind renders %q", s)
	}
}
