package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// WaitReady polls base's readiness probe until it answers 200 or the budget
// is exhausted. The budget is counted in poll attempts, not wall time, so
// callers stay deterministic apart from the sleeps themselves. It is the one
// boot-wait implementation shared by the CLI (-wait-ready), the load
// generator's HTTP target setup and the test harnesses.
func WaitReady(base string, budget time.Duration) error {
	const pollEvery = 50 * time.Millisecond
	attempts := int(budget / pollEvery)
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		resp, err := http.Get(base + PathReadyz)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(pollEvery)
	}
	return fmt.Errorf("serve: daemon at %s not ready after %v", base, budget)
}

// WriteFileAtomic writes data via a temp file in path's directory and a
// rename, so a reader polling the path (an address file, a bundle watcher)
// never observes a partial write.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
