package serve

import (
	"strings"
	"testing"

	"steerq/internal/abtest"
	"steerq/internal/obs"
)

// The SDK is the in-process steering surface the executor consults.
var _ abtest.Steerer = (*SDK)(nil)

// counterValue reads one counter's current value from a registry snapshot,
// matching on name and every key/value label pair. Reading the snapshot —
// rather than resolving the counter — keeps the assertion from registering
// metric families the production code never touched.
func counterValue(t *testing.T, reg *obs.Registry, name string, labels ...string) uint64 {
	t.Helper()
	if len(labels)%2 != 0 {
		t.Fatalf("odd label list for %s", name)
	}
points:
	for _, c := range reg.Snapshot().Counters {
		if c.Name != name || len(c.Labels)*2 != len(labels) {
			continue
		}
		for i := 0; i < len(labels); i += 2 {
			if !hasLabel(c.Labels, labels[i], labels[i+1]) {
				continue points
			}
		}
		return c.Value
	}
	return 0
}

func hasLabel(ls []obs.Label, key, value string) bool {
	for _, l := range ls {
		if l.Key == key && l.Value == value {
			return true
		}
	}
	return false
}

func TestSDKBeforeFirstLoad(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	sdk := NewSDK(reg)

	if sdk.Ready() {
		t.Fatal("Ready before any load")
	}
	if sdk.Active() != nil {
		t.Fatal("Active table before any load")
	}
	d, ok := sdk.Lookup(vec(1))
	if ok || d.Version != 0 || !d.Config.IsEmpty() {
		t.Fatalf("lookup before load: %+v, %v", d, ok)
	}
	if _, ok := sdk.Decide(vec(1)); ok {
		t.Fatal("Decide before load reported ok")
	}
	if got := counterValue(t, reg, "steerq_serve_lookups_total", "outcome", "unloaded"); got != 2 {
		t.Fatalf("unloaded counter %d, want 2", got)
	}
}

func TestSDKLoadLookupAndMetrics(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	sdk := NewSDK(reg)
	b := testBundle(t, 3, 6)
	if err := sdk.Load(b); err != nil {
		t.Fatal(err)
	}
	if !sdk.Ready() || sdk.Active() == nil || sdk.Active().Version() != 3 {
		t.Fatal("bundle not active after Load")
	}

	// One hit, one fallback, one miss.
	if d, ok := sdk.Lookup(b.Entries[0].Signature); !ok || d.Kind != KindHit {
		t.Fatalf("hit lookup: %+v, %v", d, ok)
	}
	if d, ok := sdk.Lookup(b.Entries[2].Signature); !ok || d.Kind != KindFallback {
		t.Fatalf("fallback lookup: %+v, %v", d, ok)
	}
	if d, ok := sdk.Lookup(vec(255)); !ok || d.Kind != KindDefault {
		t.Fatalf("default lookup: %+v, %v", d, ok)
	}
	cfg, ok := sdk.Decide(b.Entries[0].Signature)
	if !ok || !cfg.Equal(b.Entries[0].Config) {
		t.Fatalf("Decide: %s, %v", cfg.Hex(), ok)
	}

	for _, c := range []struct {
		outcome string
		want    uint64
	}{{"hit", 2}, {"fallback", 1}, {"default", 1}, {"unloaded", 0}} {
		if got := counterValue(t, reg, "steerq_serve_lookups_total", "outcome", c.outcome); got != c.want {
			t.Fatalf("lookups{outcome=%s} = %d, want %d", c.outcome, got, c.want)
		}
	}
	snap := reg.Snapshot()
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["steerq_serve_bundle_version"] != 3 {
		t.Fatalf("version gauge %v", gauges["steerq_serve_bundle_version"])
	}
	if gauges["steerq_serve_bundle_entries"] != 6 {
		t.Fatalf("entries gauge %v", gauges["steerq_serve_bundle_entries"])
	}
	if got := counterValue(t, reg, "steerq_serve_bundle_swaps_total"); got != 1 {
		t.Fatalf("swaps counter %d", got)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "steerq_serve_lookup_seconds" && h.Count == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("lookup latency histogram missing or wrong count")
	}
}

func TestSDKRejectKeepsOldTable(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	sdk := NewSDK(reg)
	good := testBundle(t, 1, 4)
	if err := sdk.Load(good); err != nil {
		t.Fatal(err)
	}

	data := encodeBundle(t, testBundle(t, 2, 4))
	cases := map[string][]byte{
		"corrupted": append(append([]byte(nil), data[:len(data)-3]...), 0xff, 0xff, 0xff),
		"truncated": data[:len(data)/2],
		"garbage":   []byte("not a bundle at all"),
		"empty":     nil,
	}
	n := uint64(0)
	for name, bad := range cases {
		err := sdk.LoadBytes(bad)
		if err == nil {
			t.Fatalf("%s upload accepted", name)
		}
		if !strings.HasPrefix(err.Error(), "serve: ") {
			t.Fatalf("%s error not serve-prefixed: %v", name, err)
		}
		n++
		if got := counterValue(t, reg, "steerq_serve_bundle_rejected_total"); got != n {
			t.Fatalf("after %s: rejected counter %d, want %d", name, got, n)
		}
		if v := sdk.Active().Version(); v != 1 {
			t.Fatalf("after %s: active version %d, old table lost", name, v)
		}
	}
	if err := sdk.LoadFile("/nonexistent/bundle.stqb"); err == nil {
		t.Fatal("LoadFile on missing path accepted")
	}
	if err := sdk.Load(nil); err == nil {
		t.Fatal("Load(nil) accepted")
	}

	// A good upload still swaps after all those rejects.
	if err := sdk.LoadBytes(data); err != nil {
		t.Fatal(err)
	}
	if v := sdk.Active().Version(); v != 2 {
		t.Fatalf("good upload after rejects: version %d", v)
	}
}

// TestLookupAllocationFree is the acceptance criterion that the steering
// read path never allocates after warmup: the daemon answers lookups from
// an immutable map behind an atomic pointer, with instruments pre-resolved.
func TestLookupAllocationFree(t *testing.T) {
	sdk := NewSDK(obs.NewWithClock(obs.FrozenClock()))
	b := testBundle(t, 1, 8)
	if err := sdk.Load(b); err != nil {
		t.Fatal(err)
	}
	hit := b.Entries[0].Signature
	miss := vec(255)
	// Warmup.
	sdk.Lookup(hit)
	sdk.Lookup(miss)
	if avg := testing.AllocsPerRun(1000, func() {
		sdk.Lookup(hit)
		sdk.Lookup(miss)
	}); avg != 0 {
		t.Fatalf("Lookup allocates %.2f objects per run, want 0", avg)
	}
	// The uninstrumented path (nil registry) must be allocation-free too.
	bare := NewSDK(nil)
	if err := bare.Load(b); err != nil {
		t.Fatal(err)
	}
	bare.Lookup(hit)
	if avg := testing.AllocsPerRun(1000, func() { bare.Lookup(hit) }); avg != 0 {
		t.Fatalf("uninstrumented Lookup allocates %.2f objects per run, want 0", avg)
	}
}
