package serve

import (
	"steerq/internal/bitvec"
	"steerq/internal/bundle"
)

// Kind classifies how a lookup resolved.
type Kind uint8

const (
	// KindHit is a steered decision: the signature matched an entry whose
	// configuration differs from (or was discovered for) its group.
	KindHit Kind = iota
	// KindFallback is a deliberate default: the offline pipeline analyzed
	// this group and found no improvement, so the bundle pins it to the
	// default configuration explicitly.
	KindFallback
	// KindDefault is a miss: the signature matched no entry and resolved to
	// the bundle's default configuration.
	KindDefault
)

// kindNames are the wire names of the kinds, indexed by Kind.
var kindNames = [...]string{"hit", "fallback", "default"}

// String renders the kind's wire name ("hit", "fallback" or "default").
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "default"
}

// ParseKind maps a wire name back to its Kind (false for unknown names).
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return KindDefault, false
}

// Decision is one resolved lookup: the configuration to compile under, the
// bundle version that decided it, and how it resolved. Version and Config
// always come from the same table — the atomic swap makes a torn pair
// impossible.
type Decision struct {
	Config  bitvec.Vector
	Version uint64
	Kind    Kind
}

// tableEntry is one decision held by a Table.
type tableEntry struct {
	config   bitvec.Vector
	fallback bool
}

// tableShards is the shard fan-out of a large table. A power of two so the
// shard of a key is a mask of its first signature word.
const tableShards = 16

// shardThreshold is the entry count above which NewTable builds a sharded
// table. Small tables stay a single map — one probe, best cache locality;
// large tables split by signature prefix so each probe walks a map a
// sixteenth of the size and concurrent lookups spread across distinct
// bucket arrays instead of all contending for the same hot cache lines.
// A variable, not a constant, so tests exercise both layouts with small
// bundles.
var shardThreshold = 4096

// Table is one bundle compiled into an immutable in-memory decision table.
// After NewTable returns, a Table is only ever read, which is what makes a
// bare atomic pointer swap a sufficient concurrency protocol (no lock on
// the lookup path) and lookups allocation-free.
//
// Layout is entry-count dependent: at most shardThreshold entries live in
// one map (entries); above that they are sharded by signature prefix
// (shards). Exactly one of the two is non-nil. Lookup results are identical
// under either layout — TestTableShardingEquivalence pins that down.
type Table struct {
	version     uint64
	createdUnix int64
	checksum    uint64
	workload    string
	def         bitvec.Vector
	entries     map[bitvec.Key]tableEntry
	shards      *[tableShards]map[bitvec.Key]tableEntry
	len         int
}

// shardOf picks the shard for a key: the low bits of the signature's first
// word. Rule signatures differ densely in their low rule IDs, so the prefix
// spreads real bundles about evenly.
func shardOf(k bitvec.Key) int { return int(k[0] & (tableShards - 1)) }

// NewTable compiles a decoded bundle into a decision table. The bundle's
// decoder has already rejected duplicate signatures, so the map build is
// total.
func NewTable(b *bundle.Bundle) *Table {
	t := &Table{
		version:     b.Version,
		createdUnix: b.CreatedUnix,
		checksum:    b.Checksum(),
		workload:    b.Workload,
		def:         b.Default,
		len:         len(b.Entries),
	}
	if len(b.Entries) <= shardThreshold {
		t.entries = make(map[bitvec.Key]tableEntry, len(b.Entries))
		for _, e := range b.Entries {
			t.entries[e.Signature.Key()] = tableEntry{config: e.Config, fallback: e.Fallback}
		}
		return t
	}
	var shards [tableShards]map[bitvec.Key]tableEntry
	for i := range shards {
		shards[i] = make(map[bitvec.Key]tableEntry, len(b.Entries)/tableShards+1)
	}
	for _, e := range b.Entries {
		k := e.Signature.Key()
		shards[shardOf(k)][k] = tableEntry{config: e.Config, fallback: e.Fallback}
	}
	t.shards = &shards
	return t
}

// Lookup resolves one default rule signature. It is total: a signature with
// no entry resolves to the table's default configuration with KindDefault.
func (t *Table) Lookup(sig bitvec.Vector) Decision {
	k := sig.Key()
	m := t.entries
	if m == nil {
		m = t.shards[shardOf(k)]
	}
	if e, ok := m[k]; ok {
		kind := KindHit
		if e.fallback {
			kind = KindFallback
		}
		return Decision{Config: e.config, Version: t.version, Kind: kind}
	}
	return Decision{Config: t.def, Version: t.version, Kind: KindDefault}
}

// Version reports the bundle version the table was built from.
func (t *Table) Version() uint64 { return t.version }

// Checksum reports the content hash of the bundle the table was built from.
func (t *Table) Checksum() uint64 { return t.checksum }

// Workload reports the workload the bundle was discovered on.
func (t *Table) Workload() string { return t.workload }

// Len reports the number of explicit entries (hits plus fallbacks).
func (t *Table) Len() int { return t.len }

// Sharded reports whether the table uses the prefix-sharded layout.
func (t *Table) Sharded() bool { return t.shards != nil }

// Default reports the table's default configuration.
func (t *Table) Default() bitvec.Vector { return t.def }
