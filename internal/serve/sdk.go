package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"steerq/internal/bitvec"
	"steerq/internal/bundle"
	"steerq/internal/obs"
)

// Serving-tier metric names. Label values on the lookups counter are the
// three Kind wire names plus "unloaded" (lookups before any bundle is
// live) — a closed set, so cardinality is bounded by construction.
const (
	lookupsMetric       = "steerq_serve_lookups_total"
	lookupSecondsMetric = "steerq_serve_lookup_seconds"
	versionMetric       = "steerq_serve_bundle_version"
	entriesMetric       = "steerq_serve_bundle_entries"
	swapsMetric         = "steerq_serve_bundle_swaps_total"
	rejectedMetric      = "steerq_serve_bundle_rejected_total"
)

// lookupSecondsBounds bracket the microsecond-latency target: the whole
// point of serving from a precompiled table is that lookups sit in the
// sub-10µs buckets.
var lookupSecondsBounds = []float64{1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 1e-4, 1e-3}

// SDK is the embeddable serving API: the same decision table the daemon
// serves over HTTP, consulted in-process. It holds one atomic pointer to
// the active immutable Table; Load builds a new table off to the side and
// swaps the pointer once, so concurrent Lookups always observe exactly one
// bundle version (old or new, never a mixture).
//
// The zero value is not usable; build with NewSDK. All methods are safe for
// concurrent use. Lookup is allocation-free: instruments are resolved once
// here, and nothing on the read path escapes to the heap.
type SDK struct {
	clock obs.Clock

	// NewTicker supplies Watch's poll cadence (nil = obs.NewWallTicker).
	// Tests inject an obs.ManualTicker here so hot-reload polling is driven
	// explicitly and stays deterministic under STEERQ_VCLOCK. Set before
	// Watch starts; not synchronized.
	NewTicker obs.TickerFunc

	table atomic.Pointer[Table]

	// loadMu serializes swaps so the version/entries gauges (last-write-
	// wins by contract) are only ever set from one goroutine at a time and
	// always describe the most recently swapped-in table.
	loadMu sync.Mutex

	hits      *obs.Counter
	fallbacks *obs.Counter
	defaults  *obs.Counter
	unloaded  *obs.Counter
	swaps     *obs.Counter
	rejected  *obs.Counter
	latency   *obs.Histogram
	versionG  *obs.Gauge
	entriesG  *obs.Gauge
}

// NewSDK builds an SDK recording into reg (nil for an uninstrumented SDK;
// every instrument is then a recording no-op).
func NewSDK(reg *obs.Registry) *SDK {
	return &SDK{
		clock:     reg.Clock(),
		hits:      reg.Counter(lookupsMetric, "outcome", "hit"),
		fallbacks: reg.Counter(lookupsMetric, "outcome", "fallback"),
		defaults:  reg.Counter(lookupsMetric, "outcome", "default"),
		unloaded:  reg.Counter(lookupsMetric, "outcome", "unloaded"),
		swaps:     reg.Counter(swapsMetric),
		rejected:  reg.Counter(rejectedMetric),
		latency:   reg.Histogram(lookupSecondsMetric, lookupSecondsBounds),
		versionG:  reg.Gauge(versionMetric),
		entriesG:  reg.Gauge(entriesMetric),
	}
}

// Load validates b and atomically swaps it in as the active decision table.
// On error the previous table stays live untouched.
func (s *SDK) Load(b *bundle.Bundle) error {
	if b == nil {
		s.rejected.Inc()
		return fmt.Errorf("serve: load: nil bundle")
	}
	t := NewTable(b)
	s.loadMu.Lock()
	s.table.Store(t)
	s.versionG.Set(float64(t.version))
	s.entriesG.Set(float64(t.Len()))
	s.loadMu.Unlock()
	s.swaps.Inc()
	return nil
}

// LoadBytes decodes an encoded bundle and loads it. A corrupted or
// truncated artifact is rejected — counted on the rejected counter — and
// the active table stays live.
func (s *SDK) LoadBytes(data []byte) error {
	b, err := bundle.Decode(data)
	if err != nil {
		s.rejected.Inc()
		return fmt.Errorf("serve: load bundle: %w", err)
	}
	return s.Load(b)
}

// LoadFile reads, decodes and loads the bundle at path, with the same
// reject-keeps-old contract as LoadBytes.
func (s *SDK) LoadFile(path string) error {
	b, err := bundle.ReadFile(path)
	if err != nil {
		s.rejected.Inc()
		return fmt.Errorf("serve: load bundle: %w", err)
	}
	return s.Load(b)
}

// Ready reports whether a bundle is live.
func (s *SDK) Ready() bool { return s.table.Load() != nil }

// Active returns the active decision table, or nil before the first
// successful Load. The returned table is immutable and remains valid (as
// that bundle's table) even after later swaps.
func (s *SDK) Active() *Table { return s.table.Load() }

// Lookup resolves one default rule signature against the active table. The
// boolean is false — with a zero Decision — when no bundle is live yet.
// Allocation-free after warmup; the per-kind counters and the latency
// histogram record every call.
func (s *SDK) Lookup(sig bitvec.Vector) (Decision, bool) {
	start := s.clock()
	t := s.table.Load()
	if t == nil {
		s.unloaded.Inc()
		s.latency.Observe(s.clock().Sub(start).Seconds())
		return Decision{}, false
	}
	d := t.Lookup(sig)
	switch d.Kind {
	case KindHit:
		s.hits.Inc()
	case KindFallback:
		s.fallbacks.Inc()
	case KindDefault:
		s.defaults.Inc()
	}
	s.latency.Observe(s.clock().Sub(start).Seconds())
	return d, true
}

// Decide is the abtest.Steerer surface: the configuration to compile the
// job under, given its default rule signature. It reports false when no
// bundle is live — the caller then compiles the default, exactly as an
// unsteered cluster would.
func (s *SDK) Decide(sig bitvec.Vector) (bitvec.Vector, bool) {
	d, ok := s.Lookup(sig)
	if !ok {
		return bitvec.Vector{}, false
	}
	return d.Config, true
}
