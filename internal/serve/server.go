package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
)

// State is the daemon lifecycle: starting (not yet listening), no-bundle
// (listening, nothing to serve), ready (listening with a live table) and
// draining (shutdown begun; in-flight requests finishing, new ones
// refused).
type State int32

const (
	StateStarting State = iota
	StateNoBundle
	StateReady
	StateDraining
)

var stateNames = [...]string{"starting", "no-bundle", "ready", "draining"}

// String renders the state's wire name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "starting"
}

// HTTP surface paths.
const (
	PathSteer   = "/v1/steer"
	PathBundles = "/v1/bundles"
	PathMetrics = "/metrics"
	PathHealthz = "/healthz"
	PathReadyz  = "/readyz"
)

// requestsMetric counts served requests by path and status class. The
// health probes are deliberately excluded: load balancers poll them at
// their own cadence, which would make frozen-clock metric goldens depend on
// probe timing.
const requestsMetric = "steerq_serve_requests_total"

// MaxBundleUpload bounds one POST /v1/bundles body.
const MaxBundleUpload = 16 << 20

// SteerResponse is the GET /v1/steer reply.
type SteerResponse struct {
	// Version is the bundle version that decided this lookup.
	Version uint64 `json:"version"`
	// Kind is the Decision kind wire name: "hit", "fallback" or "default".
	Kind string `json:"kind"`
	// Config is the recommended rule configuration, hex-encoded exactly as
	// bitvec.Vector.Hex renders it.
	Config string `json:"config"`
}

// BundleInfo describes the active bundle (GET or POST /v1/bundles reply).
type BundleInfo struct {
	Version     uint64 `json:"version"`
	Workload    string `json:"workload"`
	Entries     int    `json:"entries"`
	Checksum    string `json:"checksum"`
	CreatedUnix int64  `json:"created_unix"`
}

// ErrorResponse is the JSON error body every non-2xx reply carries.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Server is the daemon's HTTP surface over one SDK. Build with NewServer,
// then either Start a listener or mount Handler() under a test server. All
// methods are safe for concurrent use.
type Server struct {
	sdk *SDK
	reg *obs.Registry

	started  atomic.Bool
	draining atomic.Bool

	ln  net.Listener
	srv *http.Server

	// holdSteer, when non-nil, is called by the steer handler before the
	// lookup — a test seam that lets the drain tests pin a request
	// in-flight. Never set in production.
	holdSteer func()
}

// NewServer builds a server over sdk, recording request counters into reg
// (nil for uninstrumented).
func NewServer(sdk *SDK, reg *obs.Registry) *Server {
	s := &Server{sdk: sdk, reg: reg}
	s.srv = &http.Server{Handler: s.Handler()}
	return s
}

// SDK returns the server's SDK (the daemon wires watchers through it).
func (s *Server) SDK() *SDK { return s.sdk }

// State derives the lifecycle state: draining dominates, then
// starting-vs-listening, then bundle presence.
func (s *Server) State() State {
	switch {
	case s.draining.Load():
		return StateDraining
	case !s.started.Load():
		return StateStarting
	case s.sdk.Ready():
		return StateReady
	default:
		return StateNoBundle
	}
}

// Handler returns the full route table. The steer and bundle routes are
// wrapped in the request counter; the probes are not (see requestsMetric).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathSteer, s.counted(PathSteer, s.handleSteer))
	mux.HandleFunc(PathBundles, s.counted(PathBundles, s.handleBundles))
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	mux.HandleFunc(PathHealthz, s.handleHealthz)
	mux.HandleFunc(PathReadyz, s.handleReadyz)
	return mux
}

// statusWriter captures the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusLabel maps a status code onto the closed label set the requests
// counter uses.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusServiceUnavailable:
		return "503"
	default:
		return "other"
	}
}

// counted wraps a handler with the per-path request counter.
func (s *Server) counted(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.reg.Counter(requestsMetric, "path", path, "code", statusLabel(sw.code)).Inc()
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// handleSteer answers GET /v1/steer?sig=<hex> from the active table.
func (s *Server) handleSteer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "steer: GET only")
		return
	}
	raw := r.URL.Query().Get("sig")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "steer: missing sig parameter")
		return
	}
	sig, err := bitvec.ParseHex(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "steer: bad sig: "+err.Error())
		return
	}
	if s.holdSteer != nil {
		s.holdSteer()
	}
	d, ok := s.sdk.Lookup(sig)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "steer: no bundle loaded")
		return
	}
	writeJSON(w, http.StatusOK, SteerResponse{
		Version: d.Version,
		Kind:    d.Kind.String(),
		Config:  d.Config.Hex(),
	})
}

// activeInfo renders the active table (nil when no bundle is live).
func (s *Server) activeInfo() *BundleInfo {
	t := s.sdk.Active()
	if t == nil {
		return nil
	}
	return &BundleInfo{
		Version:     t.version,
		Workload:    t.workload,
		Entries:     t.Len(),
		Checksum:    fmt.Sprintf("%016x", t.checksum),
		CreatedUnix: t.createdUnix,
	}
}

// handleBundles serves GET (active-bundle info) and POST (hot reload) on
// /v1/bundles. A rejected upload leaves the active table untouched.
func (s *Server) handleBundles(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		info := s.activeInfo()
		if info == nil {
			writeError(w, http.StatusNotFound, "bundles: no bundle loaded")
			return
		}
		writeJSON(w, http.StatusOK, *info)
	case http.MethodPost:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBundleUpload))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bundles: read body: "+err.Error())
			return
		}
		if err := s.sdk.LoadBytes(data); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, *s.activeInfo())
	default:
		writeError(w, http.StatusMethodNotAllowed, "bundles: GET or POST only")
	}
}

// handleMetrics serves the Prometheus-style text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	if err := s.reg.Snapshot().Text(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// handleHealthz is liveness: 200 while the process serves, 503 once drain
// begins (the signal for a balancer to stop routing here).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, StateDraining.String(), http.StatusServiceUnavailable)
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: 200 only with a live bundle and no drain in
// progress. The body always names the lifecycle state.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.State()
	if st != StateReady {
		http.Error(w, st.String(), http.StatusServiceUnavailable)
		return
	}
	_, _ = io.WriteString(w, StateReady.String()+"\n")
}

// Start binds addr and serves in the background until Shutdown or Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.started.Store(true)
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// BeginDrain flips the server into the draining state: health flips to 503
// and readiness reports draining. It does not stop the listener — Shutdown
// does — so a balancer sees the drain before connections start failing.
// Returns true on the first call, false if drain had already begun.
func (s *Server) BeginDrain() bool {
	return s.draining.CompareAndSwap(false, true)
}

// Shutdown drains gracefully: new requests are refused (the listener
// closes), in-flight requests run to completion, and the call returns when
// every connection has finished or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if err := s.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// Close abandons graceful drain and closes every connection immediately.
func (s *Server) Close() error {
	s.BeginDrain()
	if err := s.srv.Close(); err != nil {
		return fmt.Errorf("serve: close: %w", err)
	}
	return nil
}

// DrainOnSignal blocks until a signal arrives, then drains gracefully with
// the given timeout. A second signal while the drain is still running
// forces an immediate Close — the double-SIGTERM escape hatch — and
// reports forced=true. The caller owns flushing metrics and exiting.
func (s *Server) DrainOnSignal(sig <-chan os.Signal, timeout time.Duration) (forced bool) {
	<-sig
	done := make(chan error, 1)
	go func() {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		done <- s.Shutdown(ctx)
	}()
	select {
	case <-done:
		return false
	case <-sig:
		_ = s.Close()
		<-done
		return true
	}
}
